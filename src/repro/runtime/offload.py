"""The offload runtime: SPE workers pulling tasks off a dependency DAG.

Scheduling applies the paper's guidelines directly:

* **Forwarding** (``policy="forward"``): a producer caches its output in
  its local store (write-through to memory for safety); a consumer on
  another SPE pulls it LS-to-LS, where the paper measures near-peak
  bandwidth, instead of re-reading main memory, where eight concurrent
  SPEs saturate.  ``policy="memory"`` is the untuned baseline: every
  value bounces through main memory.
* **Locality-aware pick**: an idle worker prefers the ready task with
  the most input bytes already sitting in its own local store.
* **Fan-out limiting**: a value with many consumers is *not* forwarded —
  sixteen SPEs pulling from one producer's local store serialise on its
  EIB off-ramp ("care must be taken in scheduling the communications in
  the EIB bus to avoid saturation"), so wide fan-outs read the
  write-through copy from memory, which both banks serve in parallel.
* **Delayed synchronisation**: input GETs across all of a task's
  dependencies share one tag group and are waited once.

The runtime runs real SPU programs on the chip model, so every transfer
contends on the EIB/banks like any other experiment in this repository.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.dma import legal_command_sizes
from repro.cell.errors import ConfigError, FaultError
from repro.cell.topology import SpeMapping
from repro.kernels.compute import Precision, SpuComputeModel
from repro.libspe import SpeContext
from repro.runtime.resilience import (
    FailureMonitor,
    InflightTable,
    ResiliencePolicy,
    interrupt_if_alive,
)
from repro.runtime.task import Task, TaskGraph
from repro.sim import AnyOf, ProgressGuard

#: Tags: input GETs on 0, the output write-through PUT on 1.
_INPUT_TAG = 0
_OUTPUT_TAG = 1

#: SPU cycles per task for runtime bookkeeping (mailbox round trip to
#: the scheduler, argument unpacking) — CellSs-style overhead.
DISPATCH_OVERHEAD_CYCLES = 200

POLICIES = ("forward", "memory")


@dataclass
class RuntimeStats:
    """What one run of the task graph cost and where the bytes went."""

    policy: str
    n_spes: int
    n_tasks: int
    makespan_cycles: int = 0
    gflops: float = 0.0
    memory_read_bytes: int = 0
    memory_write_bytes: int = 0
    forwarded_bytes: int = 0
    ls_hit_bytes: int = 0
    tasks_per_spe: dict[int, int] = field(default_factory=dict)
    # Resilience accounting (all zero in a fault-free run).
    faults_injected: int = 0
    tasks_retried: int = 0
    spes_lost: int = 0
    lost_workers: tuple[int, ...] = ()

    @property
    def memory_traffic_bytes(self) -> int:
        return self.memory_read_bytes + self.memory_write_bytes

    def __str__(self) -> str:
        text = (
            f"policy={self.policy}: {self.n_tasks} tasks on {self.n_spes} "
            f"SPEs in {self.makespan_cycles} cycles ({self.gflops:.2f} "
            f"GFLOP/s); memory {self.memory_traffic_bytes / 2 ** 20:.1f} MiB, "
            f"forwarded {self.forwarded_bytes / 2 ** 20:.1f} MiB, "
            f"LS hits {self.ls_hit_bytes / 2 ** 20:.1f} MiB"
        )
        if self.faults_injected or self.spes_lost:
            lost = (
                f" (workers {sorted(self.lost_workers)})" if self.lost_workers else ""
            )
            text += (
                f"; faults {self.faults_injected}, retried {self.tasks_retried} "
                f"task(s), lost {self.spes_lost} SPE(s){lost}"
            )
        return text


class OffloadRuntime:
    """Schedule one task graph over the SPEs of a modelled chip."""

    def __init__(
        self,
        graph: TaskGraph,
        n_spes: int = 8,
        policy: str = "forward",
        config: CellConfig | None = None,
        compute: SpuComputeModel | None = None,
        precision: Precision = Precision.SINGLE,
        ls_cache_bytes: int = 131072,
        forward_fanout_limit: int = 4,
        seed: int = 11,
        faults=None,
        resilience: ResiliencePolicy | None = None,
    ):
        if policy not in POLICIES:
            raise ConfigError(f"policy must be one of {POLICIES}, got {policy!r}")
        if forward_fanout_limit < 1:
            raise ConfigError(
                f"forward_fanout_limit must be >= 1, got {forward_fanout_limit}"
            )
        self.graph = graph
        self.config = config or CellConfig.paper_blade()
        if not 1 <= n_spes <= self.config.n_spes:
            raise ConfigError(
                f"n_spes must be in 1..{self.config.n_spes}, got {n_spes}"
            )
        self.n_spes = n_spes
        self.policy = policy
        self.compute = compute or SpuComputeModel(self.config)
        self.precision = precision
        self.ls_cache_bytes = ls_cache_bytes
        self.forward_fanout_limit = forward_fanout_limit
        self.seed = seed
        self.faults = faults
        self.resilience = resilience or ResiliencePolicy()

    # -- public ------------------------------------------------------------------

    def run(self) -> RuntimeStats:
        chip = CellChip(
            config=self.config,
            mapping=SpeMapping.random(self.seed, self.config.n_spes),
            faults=self.faults,
        )
        state = _RunState(self.graph, self.n_spes, self.ls_cache_bytes)
        stats = RuntimeStats(
            policy=self.policy,
            n_spes=self.n_spes,
            n_tasks=len(self.graph),
            tasks_per_spe={worker: 0 for worker in range(self.n_spes)},
        )
        faulting = chip.faults.enabled
        if faulting:
            state.monitor = FailureMonitor(
                lambda worker, cause: self._on_worker_loss(
                    chip, state, stats, worker, cause
                )
            )
        for worker in range(self.n_spes):
            context = SpeContext(chip, worker)
            process = context.load(self._worker, chip, state, stats, worker)
            if faulting:
                state.monitor.watch(worker, process)
        chip.run()
        if state.completed != len(self.graph):
            raise ConfigError(
                f"runtime stalled: {state.completed}/{len(self.graph)} tasks "
                "completed (dependency deadlock?)"
            )
        if faulting:
            # Dangling watchdog timers outlive the last task; the clock
            # at the final completion is the honest makespan.
            stats.makespan_cycles = state.finished_at
            stats.faults_injected = chip.faults.injected
            stats.lost_workers = tuple(state.lost)
        else:
            stats.makespan_cycles = chip.env.now
        seconds = self.config.clock.cycles_to_seconds(stats.makespan_cycles)
        stats.gflops = self.graph.total_flops / seconds / 1e9 if seconds else 0.0
        return stats

    # -- fault recovery -----------------------------------------------------------

    def _on_worker_loss(self, chip: CellChip, state: _RunState,
                        stats: RuntimeStats, worker: int,
                        cause: BaseException) -> None:
        """Quarantine a dead worker and put its work back on the market.

        Runs inline at the simulation time of death, before survivors
        resume: the SPE is marked lost, every forwarded copy it held is
        purged from the residency map (consumers fall back to the
        write-through copies in main memory), and its in-flight task —
        if any — rejoins the ready list for a surviving worker.
        """
        chip.spe(worker).mark_lost()
        state.lost.add(worker)
        stats.spes_lost += 1
        state.purge_residency(worker)
        task = state.inflight.task_of(worker)
        if task is not None:
            state.inflight.finish(worker)
            state.ready.append(task)
            stats.tasks_retried += 1
        state.wake()

    # -- the SPU worker program -----------------------------------------------------

    def _worker(self, spu, chip: CellChip, state: _RunState, stats: RuntimeStats,
                worker: int):
        env = spu.spe.env
        faulting = env.faults.enabled
        policy = self.resilience
        guard = ProgressGuard(env, f"offload worker {worker}")
        while True:
            task = state.pick(worker)
            while task is None:
                if state.completed == len(self.graph):
                    return
                guard.tick((env.now, state.completed, len(state.ready)))
                waiter = env.event()
                state.waiters.append(waiter)
                if faulting:
                    # Bounded idle wait: wake periodically to reap hung
                    # peers even when no completion fires.
                    yield AnyOf(
                        env, [waiter, env.timeout(policy.check_interval_cycles)]
                    )
                    self._reap_hung(env, state, policy)
                else:
                    yield waiter
                task = state.pick(worker)
            state.inflight.start(worker, task, env.now)
            yield spu.compute(DISPATCH_OVERHEAD_CYCLES)
            yield from self._fetch_inputs(spu, state, stats, worker, task)
            yield from self._wait(spu, [_INPUT_TAG], faulting)
            cycles = self.compute.cycles_for_flops(task.flops, self.precision)
            if cycles:
                yield spu.compute(cycles)
            # Write-through the output, then publish it.
            for size in legal_command_sizes(task.output_bytes):
                yield from spu.mfc_put(size=size, tag=_OUTPUT_TAG)
            stats.memory_write_bytes += task.output_bytes
            yield from self._wait(spu, [_OUTPUT_TAG], faulting)
            state.cache_output(worker, task)
            stats.tasks_per_spe[worker] += 1
            state.inflight.finish(worker)
            state.complete(task, env.now)

    def _wait(self, spu, tags, faulting: bool):
        """Tag-group wait: architectural (unbounded) normally, bounded
        with MFC re-drive and backoff when faults may drop commands."""
        if not faulting:
            yield from spu.wait_tags(tags)
            return
        policy = self.resilience
        yield from spu.wait_tags(
            tags,
            timeout=policy.dma_timeout_cycles,
            retries=policy.dma_retries,
            backoff=policy.dma_backoff,
        )

    def _reap_hung(self, env, state: _RunState,
                   policy: ResiliencePolicy) -> None:
        """Declare workers that sat on one task past the hang timeout
        lost, then interrupt their processes so they retire cleanly."""
        for hung in state.inflight.expired(env.now, policy.hang_timeout_cycles):
            if hung in state.lost:
                continue
            process = state.monitor.process_of(hung)
            state.monitor.declare_lost(
                hung,
                FaultError(
                    f"worker {hung} hung past {policy.hang_timeout_cycles} cycles"
                ),
            )
            interrupt_if_alive(env, process, "hang quarantine")

    def _fetch_inputs(self, spu, state: _RunState, stats: RuntimeStats,
                      worker: int, task: Task):
        for dep in task.depends_on:
            holders = state.residency.get(dep, set())
            if worker in holders:
                stats.ls_hit_bytes += dep.output_bytes
                continue
            narrow_fanout = (
                len(state.graph.consumers[dep]) <= self.forward_fanout_limit
            )
            if self.policy == "forward" and holders and narrow_fanout:
                source = min(holders)  # deterministic choice
                partner = spu.spe.chip.spe(source)
                for size in legal_command_sizes(dep.output_bytes):
                    yield from spu.mfc_get(
                        size=size, tag=_INPUT_TAG, remote_spe=partner
                    )
                stats.forwarded_bytes += dep.output_bytes
                state.cache_copy(worker, dep)
            else:
                for size in legal_command_sizes(dep.output_bytes):
                    yield from spu.mfc_get(size=size, tag=_INPUT_TAG)
                stats.memory_read_bytes += dep.output_bytes
        if task.external_input_bytes:
            for size in legal_command_sizes(task.external_input_bytes):
                yield from spu.mfc_get(size=size, tag=_INPUT_TAG)
            stats.memory_read_bytes += task.external_input_bytes


class _RunState:
    """Shared scheduler state (mutated only between simulator events)."""

    def __init__(self, graph: TaskGraph, n_spes: int, ls_cache_bytes: int):
        self.graph = graph
        self.ls_cache_bytes = ls_cache_bytes
        self.pending: dict[Task, int] = {
            task: len(task.depends_on) for task in graph.tasks
        }
        self.ready: list[Task] = [
            task for task in graph.tasks if not task.depends_on
        ]
        self.completed = 0
        self.waiters: list = []
        # Resilience bookkeeping — untouched in a fault-free run.
        self.inflight = InflightTable()
        self.lost: set[int] = set()
        self.monitor: FailureMonitor | None = None
        self.finished_at = 0
        # Which SPEs hold a task's output in their LS (memory always has
        # a write-through copy, so eviction is a plain drop).
        self.residency: dict[Task, set[int]] = {}
        self._cache: dict[int, deque[tuple[Task, int]]] = {
            worker: deque() for worker in range(n_spes)
        }
        self._cache_used: dict[int, int] = {worker: 0 for worker in range(n_spes)}

    def pick(self, worker: int) -> Task | None:
        """Pop the ready task with the most bytes resident on ``worker``."""
        if not self.ready:
            return None
        best_index = 0
        best_score = -1
        for index, task in enumerate(self.ready):
            score = sum(
                dep.output_bytes
                for dep in task.depends_on
                if worker in self.residency.get(dep, ())
            )
            if score > best_score:
                best_index, best_score = index, score
        return self.ready.pop(best_index)

    def cache_output(self, worker: int, task: Task) -> None:
        self._insert(worker, task)

    def cache_copy(self, worker: int, task: Task) -> None:
        """A forwarded input now also lives in the consumer's LS."""
        if worker not in self.residency.get(task, set()):
            self._insert(worker, task)

    def _insert(self, worker: int, task: Task) -> None:
        if task.output_bytes > self.ls_cache_bytes:
            return  # uncacheable; memory keeps the only copy
        cache = self._cache[worker]
        while self._cache_used[worker] + task.output_bytes > self.ls_cache_bytes:
            evicted, size = cache.popleft()
            self._cache_used[worker] -= size
            self.residency[evicted].discard(worker)
        cache.append((task, task.output_bytes))
        self._cache_used[worker] += task.output_bytes
        self.residency.setdefault(task, set()).add(worker)

    def purge_residency(self, worker: int) -> None:
        """Forget every LS copy a quarantined worker held: consumers
        must re-read the write-through copies from main memory."""
        for holders in self.residency.values():
            holders.discard(worker)
        self._cache[worker].clear()
        self._cache_used[worker] = 0

    def wake(self) -> None:
        waiters, self.waiters = self.waiters, []
        for waiter in waiters:
            waiter.succeed()

    def complete(self, task: Task, now: int) -> None:
        self.completed += 1
        self.finished_at = now
        for consumer in self.graph.consumers[task]:
            self.pending[consumer] -= 1
            if self.pending[consumer] == 0:
                self.ready.append(consumer)
        self.wake()
