"""Crash-safe sweep journal: an append-only completion log for resume.

The persistent result cache already memoises repetitions across runs,
but it is global, optional (``--no-cache``), and evictable.  The
journal is the *per-run* durability story: every completed repetition
is appended to one JSONL file the moment its sample exists, so a sweep
killed by SIGKILL, OOM or power loss can be resumed —
``reproduce --resume`` (or ``SweepExecutor(journal=...)``) replays the
journalled repetitions without re-simulating and re-executes only the
remainder.

Format: one JSON object per line::

    {"key": "<sha-256 spec key>", "gbps": ..., "nbytes": ..., "cycles": ..., "seed": ...}

``key`` is :func:`repro.core.cache.spec_key` — identical to the result
cache's content address, including the code-version component, so a
journal written by different sources never replays a stale sample: an
entry from edited code simply stops matching, exactly like a cache
entry.

Crash safety is the append discipline: each record is written as one
line, flushed, and (by default) fsynced before the executor moves on.
A crash mid-append leaves at most one truncated final line, which
:meth:`SweepJournal.load` skips (counted in ``dropped``) — every record
before it replays intact.  An unwritable journal degrades to a
warn-once in-memory log, mirroring the cache's behaviour: losing
durability must not lose the run.
"""

from __future__ import annotations

import contextlib
import json
import os
import warnings

from repro.core.cache import decode_sample, encode_sample, repro_code_version, spec_key
from repro.core.results import BandwidthSample


class SweepJournal:
    """Append-only log of completed repetitions under one file path.

    Constructing the journal loads whatever the file already holds
    (nothing, for a fresh run), so "start journalling" and "resume" are
    the same operation.  ``fsync=False`` trades the power-loss guarantee
    for speed (crash safety against process death is kept either way).
    """

    def __init__(self, path: str, code_version: str | None = None,
                 fsync: bool = True):
        self.path = path
        self.code_version = (
            repro_code_version() if code_version is None else code_version
        )
        self.fsync = fsync
        self.loaded = 0
        self.dropped = 0
        self._entries: dict[str, BandwidthSample] = {}
        self._handle = None
        self._writable = True
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return  # fresh journal
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                self.dropped += 1  # truncated tail or bit-flipped line
                continue
            key = payload.get("key") if isinstance(payload, dict) else None
            sample = decode_sample(payload)
            if not isinstance(key, str) or len(key) != 64 or sample is None:
                self.dropped += 1
                continue
            self._entries[key] = sample
            self.loaded += 1

    def key(self, spec) -> str:
        return spec_key(spec, self.code_version)

    def get(self, spec, key: str | None = None) -> BandwidthSample | None:
        """The journalled sample of a completed repetition, or None."""
        if key is None:
            key = self.key(spec)
        return self._entries.get(key)

    def record(self, spec, sample: BandwidthSample,
               key: str | None = None) -> None:
        """Append one completed repetition (idempotent per key)."""
        if key is None:
            key = self.key(spec)
        if key in self._entries:
            return
        self._entries[key] = sample
        if not self._writable:
            return
        line = json.dumps(
            {"key": key, **encode_sample(sample)},
            sort_keys=True, separators=(",", ":"),
        )
        try:
            if self._handle is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._handle = open(self.path, "a")  # noqa: SIM115 - persistent append handle, closed in close()
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as error:
            self._writable = False
            warnings.warn(
                f"sweep journal {self.path!r} is not writable ({error}); "
                "completions will not survive this process",
                RuntimeWarning,
                stacklevel=2,
            )

    def close(self) -> None:
        if self._handle is not None:
            with contextlib.suppress(OSError):
                self._handle.close()
            self._handle = None

    def __enter__(self) -> SweepJournal:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        text = f"{len(self._entries)} entr(ies) at {self.path}"
        if self.dropped:
            text += f", {self.dropped} corrupt line(s) skipped"
        return text
