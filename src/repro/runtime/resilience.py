"""Recovery machinery for runs that lose workers — simulated or real.

Two failure domains share this module:

* **inside the simulation** (the original scope): the paper's runtime
  guidelines assume every SPE answers, and the classes below keep a
  run correct when one doesn't (see :mod:`repro.sim.faults`);
* **on the host**: the sweep executor
  (:mod:`repro.runtime.parallel`) supervises real worker *processes*
  that can crash, hang or be OOM-killed mid-sweep.
  :class:`HostRetryPolicy` holds its wall-clock timeout/retry knobs,
  :class:`SpecFailure` / :class:`SweepFailureReport` are the structured
  account of what could not be completed, and :class:`SweepError` is
  what a non-partial sweep raises instead of losing that account.

The simulated-chip machinery:

* :class:`ResiliencePolicy` — the knobs: how long a tag-group wait may
  block before the MFC is re-driven (bounded retry with exponential
  backoff), and how long a worker may sit on one task before the
  scheduler declares it hung;
* :class:`FailureMonitor` — observes the worker processes.  A worker
  that dies of an *injected* fault (:class:`~repro.cell.errors.FaultError`)
  is quarantined through a callback and its failure event defused, so
  the run continues; any other failure keeps propagating, because a
  genuine model bug must never be silently "recovered";
* :class:`InflightTable` — which worker is working on which task since
  when, the input of hang detection.

Recovery itself is a scheduler action (:mod:`repro.runtime.offload`):
the quarantined SPE's in-flight task goes back on the ready list and is
re-dispatched to a surviving worker, which re-reads the write-through
copies of its inputs from main memory — the forwarded LS state died
with the SPE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.cell.errors import FaultError
from repro.sim import Environment, Event, Process


@dataclass(frozen=True)
class HostRetryPolicy:
    """Host-side supervision knobs for the sweep executor.

    All times are wall-clock seconds (the host, unlike the simulated
    chip, has no cycle counter).  ``timeout_s`` bounds how long the
    executor waits for one repetition's result once it starts
    harvesting it (``None`` = wait forever: hung workers are then only
    caught by lost-worker detection, which needs the process to die);
    each retry round multiplies the timeout by ``backoff``.
    ``retries`` bounds how many times one repetition is re-dispatched
    after a crash, hang or worker exception before it is declared
    failed.  The defaults retry but never time out, which cannot change
    the results of a healthy run (repetitions are pure functions).
    """

    timeout_s: float | None = None
    retries: int = 2
    backoff: float = 2.0

    def __post_init__(self):
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0 or None, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def timeout_for(self, attempt: int) -> float | None:
        """The harvest timeout of one attempt (0 = first), backed off."""
        if self.timeout_s is None:
            return None
        return self.timeout_s * self.backoff ** attempt


@dataclass
class SpecFailure:
    """One repetition the executor could not complete.

    ``cause`` is human-readable (``"no result within 2.0s"``,
    ``"worker lost (pid change)"``, ``"RuntimeError: ..."``); ``error``
    keeps the original worker exception object when there was one, so a
    non-partial sweep can re-raise it unchanged.
    """

    index: int
    seed: int
    attempts: int
    cause: str
    error: BaseException | None = None

    def __str__(self) -> str:
        return (
            f"repetition {self.index} (seed {self.seed}): {self.cause} "
            f"after {self.attempts} attempt(s)"
        )


@dataclass
class SweepFailureReport:
    """Structured account of a partially-completed sweep."""

    failures: list[SpecFailure] = field(default_factory=list)
    total: int = 0
    completed: int = 0

    def summary(self) -> str:
        lines = [
            f"sweep incomplete: {self.completed}/{self.total} repetition(s) "
            f"completed, {len(self.failures)} failed"
        ]
        lines += [f"  {failure}" for failure in self.failures]
        return "\n".join(lines)


class SweepError(RuntimeError):
    """A sweep that exhausted its retries without ``partial_results``.

    Carries the :class:`SweepFailureReport`; every repetition that *did*
    complete was already journalled/cached before this was raised, so a
    resumed run re-executes only the remainder.
    """

    def __init__(self, report: SweepFailureReport):
        super().__init__(report.summary())
        self.report = report


@dataclass(frozen=True)
class ResiliencePolicy:
    """Timeout/retry knobs for a fault-tolerant runtime run.

    All values are CPU cycles.  ``dma_timeout_cycles`` bounds one
    tag-group wait; each re-drive multiplies it by ``dma_backoff`` up to
    ``dma_retries`` times.  ``hang_timeout_cycles`` is how long a worker
    may hold one task before the scheduler declares the worker hung and
    re-dispatches the task; idle workers re-check every
    ``check_interval_cycles``.
    """

    dma_timeout_cycles: int = 200_000
    dma_retries: int = 3
    dma_backoff: int = 2
    hang_timeout_cycles: int = 1_000_000
    check_interval_cycles: int = 100_000

    def __post_init__(self):
        if self.dma_timeout_cycles < 1:
            raise ValueError("dma_timeout_cycles must be >= 1")
        if self.dma_retries < 0:
            raise ValueError("dma_retries must be >= 0")
        if self.dma_backoff < 1:
            raise ValueError("dma_backoff must be >= 1")
        if self.hang_timeout_cycles < 1:
            raise ValueError("hang_timeout_cycles must be >= 1")
        if self.check_interval_cycles < 1:
            raise ValueError("check_interval_cycles must be >= 1")


class InflightTable:
    """Which worker started which task when (for hang detection)."""

    def __init__(self):
        self._inflight: dict[int, tuple[object, int]] = {}

    def start(self, worker: int, task, now: int) -> None:
        self._inflight[worker] = (task, now)

    def finish(self, worker: int) -> None:
        self._inflight.pop(worker, None)

    def task_of(self, worker: int):
        entry = self._inflight.get(worker)
        return entry[0] if entry else None

    def expired(self, now: int, timeout: int) -> list[int]:
        """Workers that have held one task for longer than ``timeout``."""
        return [
            worker
            for worker, (_task, since) in self._inflight.items()
            if now - since > timeout
        ]


class FailureMonitor:
    """Observes worker processes and turns injected-fault deaths into
    quarantine callbacks instead of end-of-run crashes.

    ``on_loss(worker, cause)`` runs at the simulation time the worker
    died, before any other process resumes (event callbacks fire
    in-line), so the scheduler state is repaired before survivors look
    for work.
    """

    def __init__(self, on_loss: Callable[[int, BaseException], None]):
        self.on_loss = on_loss
        self.lost: list[int] = []
        self._watched: dict[int, Process] = {}

    def watch(self, worker: int, process: Process) -> None:
        self._watched[worker] = process
        process.callbacks.append(
            lambda event, worker=worker: self._observe(worker, event)
        )

    def process_of(self, worker: int) -> Process | None:
        return self._watched.get(worker)

    def declare_lost(self, worker: int, cause: BaseException) -> None:
        """Quarantine a worker that did not die on its own (a hang)."""
        if worker in self.lost:
            return
        self.lost.append(worker)
        self.on_loss(worker, cause)

    def _observe(self, worker: int, event: Event) -> None:
        if event._ok or not isinstance(event._value, FaultError):
            return  # clean exit, or a real bug that must propagate
        event._defused = True
        if worker not in self.lost:
            self.lost.append(worker)
            self.on_loss(worker, event._value)


def interrupt_if_alive(env: Environment, process: Process | None,
                       cause: str) -> bool:
    """Retire a hung process (its fault wrapper catches the Interrupt
    and returns).  True when an interrupt was delivered."""
    if process is None or not process.is_alive:
        return False
    process.interrupt(cause)
    return True
