"""The paper's reported numbers and shape claims, as data.

Absolute axis values were lost in the available scan of the paper for
some figures, but the prose fixes a dense set of anchors (peaks,
percentages, crossovers, orderings).  Everything the validation layer
checks is recorded here with a quote-level pointer to the paper text.

Values are GB/s unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Architectural peaks, section 1/3.
PEAKS = {
    "ppu_l1_link": 33.6,  # 16 B / CPU cycle at 2.1 GHz
    "spu_ls": 33.6,  # 16 B / CPU cycle
    "eib_per_transfer": 16.8,  # 16 B / bus cycle
    "pair_read_write": 33.6,  # simultaneous GET+PUT
    "mic_bank": 16.8,
    "ioif_path": 7.0,
    "memory_combined": 23.8,  # "16.8 from MIC + 7 from IO"
    "couples_8": 134.4,
    "cycle_4": 67.2,
    "cycle_2": 33.6,
}

#: Section 4.2.1 (Figure 8) anchors.
SPE_MEMORY = {
    # "when a single SPE is active, it only achieves 10 regardless of
    #  the operation"
    "one_spe": 10.0,
    # "we achieve 20 GET or PUT performance" (two or more SPEs)
    "two_spe_get_put": 20.0,
    # "we achieve a maximum of 23 in copy operations"
    "copy_max": 23.0,
    # "Bandwidth still increases from 2 to 4 threads, but it drops when
    #  all 8 SPEs are active"
    "rises_2_to_4": True,
    "drops_4_to_8": True,
}

#: Section 4.2.3/4 (Figures 10/12) anchors.
PAIR = {
    # "DMA-elem transfers obtain almost peak performance for element
    #  sizes of 1024 bytes and above"
    "elem_near_peak_from_bytes": 1024,
    # fraction of peak counted as "almost peak"
    "near_peak_fraction": 0.90,
    # "for chunks of data smaller than 1024 bytes, the bandwidth
    #  performance degradation is significant"
    "small_elem_degraded_fraction": 0.65,
    # "there is a very small variation among the different experiments
    #  (under 2)" — GB/s, across partner SPEs / placements
    "distance_variation_max": 2.0,
    # delaying sync "is important ... especially for DMA elements
    #  between 1024 bytes and 8KB"
    "sync_sensitive_range": (1024, 8192),
}

#: Section 4.2.4 (Figures 12/13) anchors.
COUPLES = {
    # 2 and 4 SPEs: near peak performance
    "small_team_peak_fraction": 0.85,
    # "the average performance is around 95 and 81 for DMA-elem and
    #  DMA-list transfers respectively ... 70% and 60% of the peak
    #  performance of [134.4]"
    "eight_spe_elem_mean": 95.0,
    "eight_spe_list_mean": 81.0,
    # "differences of [~30] between the maximum and minimum achieved
    #  performance, depending on the physical location of SPEs"
    "eight_spe_spread": 30.0,
    # NOTE: the paper's Figure 13 prose then claims DMA-elem achieves
    #  *lower* performance than DMA-list, contradicting its own
    #  "95 and 81 ... respectively".  We validate only that both means
    #  fall in the 60-75% band and that the spread is placement-driven.
    "eight_spe_mean_fraction_band": (0.55, 0.80),
}

#: Section 4.2.5 (Figures 15/16) anchors.
CYCLE = {
    # "peak performance is actually achieved for 2 SPEs (33.6)"
    "two_spe_peak_fraction": 0.90,
    # "We achieve 50 for 4 SPEs and 70 for 8 SPEs"
    "four_spe_mean": 50.0,
    "eight_spe_mean": 70.0,
    # "This is lower performance than the previous experiment"
    "below_couples": True,
    # "variations of 20 for DMA-elem transfers and 10 for DMA-list"
    "eight_spe_elem_spread": 20.0,
    "eight_spe_list_spread": 10.0,
}

#: Section 4.1 (Figures 3/4/6) ordering claims.
PPE = {
    # "the PPU can effectively obtain half the peak performance in load
    #  access to the L1 cache when accessing at least 8 Bytes"
    "l1_load_half_peak_from_bytes": 8,
    # "For 16 Bytes access, we cannot obtain any performance improvement"
    "l1_load_16b_no_gain": True,
    # "the effective bandwidth obtained decreases proportionally to the
    #  size of the data element"
    "proportional_below_bytes": 8,
    # "L2 cache performance is much lower than L1 performance"
    "l2_below_l1": True,
    # L2: stores "achieve almost twice the bandwidth [of loads] for a
    #  single active thread"
    "l2_store_load_ratio_1t": 2.0,
    # "performance increases significantly when using 2 active threads"
    "l2_two_threads_help": True,
    # "Read access to memory achieves the same performance as L2 read"
    "mem_load_equals_l2_load": True,
    # "Write access to memory achieves much lower performance than L2"
    "mem_store_below_l2_store": True,
    # "The performance results obtained for transfer between the PPU and
    #  main Memory are very low (under 6)"
    "mem_under": 6.0,
}

#: Section 4.2.2: SPU <-> LS.
SPU_LS = {
    # "we do achieve the peak bandwidth for 16 byte transfers"
    "peak_at_16b": 33.6,
}


@dataclass(frozen=True)
class ShapeClaim:
    """A checkable statement from the paper."""

    claim_id: str
    description: str
    paper_value: float | None = None
    tolerance_fraction: float = 0.25

    def band(self):
        if self.paper_value is None:
            raise ValueError(f"claim {self.claim_id} has no numeric value")
        low = self.paper_value * (1 - self.tolerance_fraction)
        high = self.paper_value * (1 + self.tolerance_fraction)
        return low, high
