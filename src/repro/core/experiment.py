"""Shared experiment protocol.

Every experiment follows the paper's section 3:

* a fresh machine per repetition, with a seeded random logical-to-
  physical SPE mapping (the API cannot choose or observe the placement,
  so the paper repeats each experiment ten times — we sweep seeds);
* a warm-up lap before the timed region (inside the kernels);
* weak scaling: each active SPE moves the same per-SPE volume;
* timing with the decrementer; bandwidth = total bytes over the wall
  interval from the first SPE's start to the last SPE's end;
* reduction to min/max/median/mean.

Volumes: the paper moves 32 MiB per SPE.  Sustained bandwidth in the
model is volume-invariant once a few commands are in flight (a test
asserts this), so experiments default to a smaller per-SPE volume with a
command-count clamp to keep small-element sweeps fast; ``paper_scale()``
restores 32 MiB.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from collections.abc import Sequence

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.errors import ConfigError
from repro.cell.topology import SpeMapping
from repro.core.kernels import DmaWorkload, FastStreamKernel, dma_stream_kernel
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable
from repro.libspe import SpeContext

#: Assignment of one workload to one logical SPE.
Assignment = tuple[int, DmaWorkload]


@dataclass(frozen=True)
class RunSpec:
    """One repetition of one sweep cell, as a picklable value.

    Everything a worker process needs to reproduce the repetition:
    the machine, the seeded SPE placement, and each active SPE's
    workload.  :func:`run_spec` is a pure function of this value, which
    is what makes repetitions safe to fan out across processes
    (:mod:`repro.runtime.parallel`) and to cache persistently
    (:mod:`repro.core.cache`).
    """

    config: CellConfig
    seed: int
    assignments: tuple[Assignment, ...]
    unrolled: bool = True

    def canonical(self) -> dict:
        """Canonical JSON-able payload of this spec: the exact content
        the result cache and the sweep journal hash into a key (see
        :func:`repro.core.cache.spec_key`).  Field names and nesting are
        part of the on-disk cache format — changing them orphans every
        existing entry."""
        return {
            "config": asdict(self.config),
            "assignments": [
                [logical, asdict(workload)]
                for logical, workload in self.assignments
            ],
            "seed": self.seed,
            "unrolled": self.unrolled,
        }


@dataclass(frozen=True)
class EngineReport:
    """One repetition's sample plus the engine's event accounting.

    ``events_popped`` counts heap pops the engine actually performed;
    ``events_elided`` counts pops the steady-state fast-forward skipped
    by warping whole periods (zero on the reference engine and on any
    run where no warp fired).  ``events_modeled`` — their sum — is the
    comparable work measure across engines: a warped run models the
    same periods it would otherwise have simulated.  Picklable, so pool
    workers can return it directly.
    """

    sample: BandwidthSample
    events_popped: int
    events_elided: int = 0
    windows_warped: int = 0
    cycles_warped: int = 0

    @property
    def events_modeled(self) -> int:
        return self.events_popped + self.events_elided


def run_spec(spec: RunSpec, engine: str = "reference") -> BandwidthSample:
    """Run one repetition on a fresh chip; the module-level entry point
    worker processes import by name.

    Workers build their own :class:`~repro.sim.Environment`, so tracing
    and fault injection are never active inside a fanned-out repetition
    (both attach at chip construction, and a spec carries neither).

    ``engine`` picks the execution engine; the returned sample is
    identical for every engine (the fast engine replays the reference
    heap schedule — see :mod:`repro.sim.engine_fast`), which is why the
    result cache keys on the spec alone.
    """
    return run_spec_report(spec, engine).sample


def run_spec_report(spec: RunSpec, engine: str = "reference") -> EngineReport:
    """:func:`run_spec` with the engine's event accounting attached."""
    if not spec.assignments:
        raise ConfigError("no SPE assignments")
    mapping = SpeMapping.random(spec.seed, spec.config.n_spes)
    chip = CellChip(config=spec.config, mapping=mapping, engine=engine)
    outs: list[dict] = []
    for logical, workload in spec.assignments:
        partner = (
            chip.spe(workload.partner_logical)
            if workload.partner_logical is not None
            else None
        )
        out: dict = {}
        if chip.engine == "fast":
            FastStreamKernel(
                chip.env, chip.spe(logical), workload, out,
                partner=partner, unrolled=spec.unrolled,
            )
        else:
            context = SpeContext(chip, logical, unrolled=spec.unrolled)
            context.load(dma_stream_kernel, workload, out, partner)
        outs.append(out)
    chip.run()
    total_bytes = sum(out["bytes"] for out in outs)
    elapsed = max(out["end"] for out in outs) - min(out["start"] for out in outs)
    sample = BandwidthSample(
        gbps=spec.config.clock.gbps(total_bytes, elapsed),
        nbytes=total_bytes,
        cycles=elapsed,
        seed=spec.seed,
    )
    env = chip.env
    fastforward = getattr(env, "fastforward", None)
    if fastforward is None:
        return EngineReport(sample=sample, events_popped=env.events_popped)
    return EngineReport(
        sample=sample,
        events_popped=env.events_popped,
        events_elided=fastforward.events_elided,
        windows_warped=fastforward.windows_warped,
        cycles_warped=fastforward.cycles_warped,
    )

#: Fewest commands a timed region may contain (steady-state guarantee).
MIN_COMMANDS = 32

#: Most commands per run (keeps 128 B sweeps tractable).
MAX_COMMANDS = 2048

#: Default per-SPE volume (the paper uses 32 MiB; see module docstring).
DEFAULT_BYTES_PER_SPE = 2 * 2 ** 20

#: Paper volume.
PAPER_BYTES_PER_SPE = 32 * 2 ** 20

#: The element-size sweep of every DMA figure: 128 B .. 16 KiB.
DMA_ELEMENT_SIZES: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass
class ExperimentResult:
    """What an experiment hands to reports and validation."""

    name: str
    description: str
    tables: dict[str, SweepTable] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def table(self, name: str) -> SweepTable:
        if name not in self.tables:
            raise KeyError(
                f"experiment {self.name!r} has tables {sorted(self.tables)}, "
                f"not {name!r}"
            )
        return self.tables[name]


class Experiment:
    """Base class: machine + repetition policy + measurement helpers."""

    name = "abstract-experiment"
    description = ""

    def __init__(
        self,
        config: CellConfig | None = None,
        repetitions: int = 10,
        bytes_per_spe: int = DEFAULT_BYTES_PER_SPE,
        seed_base: int = 1000,
        unrolled: bool = True,
        executor=None,
    ):
        if repetitions < 1:
            raise ConfigError(f"repetitions must be >= 1, got {repetitions}")
        if bytes_per_spe < 16384:
            raise ConfigError(
                f"bytes_per_spe below one maximum DMA command: {bytes_per_spe}"
            )
        self.config = config or CellConfig.paper_blade()
        self.repetitions = repetitions
        self.bytes_per_spe = bytes_per_spe
        self.seed_base = seed_base
        self.unrolled = unrolled
        # Optional repetition executor (duck-typed:
        # repro.runtime.parallel.SweepExecutor).  None = run every
        # repetition inline, exactly the historical serial path.
        self.executor = executor

    @classmethod
    def paper_scale(cls, **kwargs) -> Experiment:
        """The experiment at the paper's full 32 MiB per SPE."""
        kwargs.setdefault("bytes_per_spe", PAPER_BYTES_PER_SPE)
        return cls(**kwargs)

    # -- repetition / sizing policy -----------------------------------------------

    @property
    def seeds(self) -> list[int]:
        return [self.seed_base + i for i in range(self.repetitions)]

    def n_elements_for(self, element_bytes: int) -> int:
        """Commands per SPE for an element size: the per-SPE volume,
        clamped so tiny elements stay tractable and huge ones still
        produce a steady state."""
        if element_bytes <= 0:
            raise ConfigError(f"element of {element_bytes} bytes")
        wanted = self.bytes_per_spe // element_bytes
        return max(MIN_COMMANDS, min(MAX_COMMANDS, wanted))

    # -- measurement ---------------------------------------------------------------

    def build_chip(self, seed: int) -> CellChip:
        mapping = SpeMapping.random(seed, self.config.n_spes)
        return CellChip(config=self.config, mapping=mapping)

    def spec_for(
        self, seed: int, assignments: Sequence[Assignment]
    ) -> RunSpec:
        """The picklable :class:`RunSpec` of one repetition."""
        return RunSpec(
            config=self.config,
            seed=seed,
            assignments=tuple(assignments),
            unrolled=self.unrolled,
        )

    def run_assignments(
        self,
        seed: int,
        assignments: Sequence[Assignment],
    ) -> BandwidthSample:
        """Run one repetition: each (logical SPE, workload) pair runs the
        stream kernel; returns the aggregate-bandwidth sample."""
        return run_spec(self.spec_for(seed, assignments))

    def stats_over_seeds(
        self, assignments_for_seed
    ) -> BandwidthStats:
        """Repeat a run over all seeds.  ``assignments_for_seed(seed)``
        returns the (logical, workload) list for one repetition.

        With an :attr:`executor` attached, the repetitions go through it
        instead of running inline: the executor may serve them from the
        persistent cache, fan them out over worker processes, or defer
        them until the whole sweep is planned — in which case the
        returned object is a placeholder the executor later replaces in
        every :class:`~repro.core.results.SweepTable`
        (:meth:`repro.runtime.parallel.SweepExecutor.run`).
        """
        specs = [
            self.spec_for(seed, assignments_for_seed(seed))
            for seed in self.seeds
        ]
        if self.executor is not None:
            return self.executor.stats(specs)
        return BandwidthStats.from_samples([run_spec(spec) for spec in specs])

    # -- the part subclasses implement ---------------------------------------------

    def run(self) -> ExperimentResult:
        raise NotImplementedError
