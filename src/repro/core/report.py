"""Text rendering of experiment results: the figures as tables.

``format_table`` prints one :class:`~repro.core.results.SweepTable` with
the last axis as columns (the figures' x axis is always the element
size) and the remaining axes as row labels.  ``render_result`` prints a
whole experiment; ``to_csv`` exports for plotting.
"""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.core.experiment import ExperimentResult
from repro.core.results import SweepTable


def _axis_label(value) -> str:
    if isinstance(value, int) and value >= 2 ** 20:
        return "all"
    return str(value)


def format_table(
    table: SweepTable,
    statistic: str = "mean",
    title: str = "",
) -> str:
    """Render the table with the last axis as columns.

    ``statistic`` is one of mean/median/minimum/maximum/spread.
    """
    if not len(table):
        raise ValueError(f"table {table.name!r} is empty")
    column_axis = table.axes[-1]
    row_axes = table.axes[:-1]
    columns = table.axis_values(column_axis)
    row_keys: list[tuple] = []
    for key in table.cells:
        row_key = key[:-1]
        if row_key not in row_keys:
            row_keys.append(row_key)

    out = io.StringIO()
    header = title or f"{table.name} ({statistic}, GB/s)"
    out.write(header + "\n")
    row_label_width = max(
        [len(" ".join(f"{a}={_axis_label(v)}" for a, v in zip(row_axes, rk, strict=True)))
         for rk in row_keys]
        + [len("/".join(row_axes))]
    )
    out.write(
        " " * row_label_width
        + " | "
        + " ".join(f"{_axis_label(c):>8}" for c in columns)
        + "\n"
    )
    out.write("-" * (row_label_width + 3 + 9 * len(columns)) + "\n")
    for row_key in row_keys:
        label = " ".join(
            f"{axis}={_axis_label(value)}" for axis, value in zip(row_axes, row_key, strict=True)
        )
        cells = []
        for column in columns:
            key = row_key + (column,)
            if key in table.cells:
                cells.append(f"{getattr(table.cells[key], statistic):8.2f}")
            else:
                cells.append(" " * 8)
        out.write(f"{label:<{row_label_width}} | " + " ".join(cells) + "\n")
    return out.getvalue()


def format_placement_statistics(
    table: SweepTable, fixed_key: tuple, title: str = ""
) -> str:
    """The Figure 13/16 view: min/max/median/mean for one configuration
    across element sizes."""
    column_axis = table.axes[-1]
    columns = table.axis_values(column_axis)
    out = io.StringIO()
    out.write((title or f"{table.name} placement statistics") + "\n")
    out.write(
        f"{'statistic':<10} | "
        + " ".join(f"{_axis_label(c):>8}" for c in columns)
        + "\n"
    )
    out.write("-" * (13 + 9 * len(columns)) + "\n")
    for statistic in ("minimum", "median", "mean", "maximum"):
        cells = []
        for column in columns:
            key = fixed_key + (column,)
            stats = table.cells.get(key)
            cells.append(f"{getattr(stats, statistic):8.2f}" if stats else " " * 8)
        out.write(f"{statistic:<10} | " + " ".join(cells) + "\n")
    return out.getvalue()


def render_result(result: ExperimentResult, statistic: str = "mean") -> str:
    """All of an experiment's tables plus its notes."""
    out = io.StringIO()
    out.write(f"== {result.name}: {result.description}\n\n")
    for name, table in result.tables.items():
        out.write(format_table(table, statistic=statistic, title=f"-- {name}"))
        out.write("\n")
    for note in result.notes:
        out.write(f"note: {note}\n")
    return out.getvalue()


def format_series_chart(
    table: SweepTable,
    axis: str,
    series_fixed: Sequence[tuple[str, dict]],
    width: int = 50,
    title: str = "",
    peak: float = None,
) -> str:
    """An ASCII bar chart of one or more series — the figures, roughly
    as they look in the paper.

    ``series_fixed`` is a list of (label, fixed-axes dict) pairs; each
    produces one group of bars over the ``axis`` values.  ``peak``
    (defaults to the largest value) sets the full-width scale, so bars
    are directly comparable to the experiment's peak.
    """
    groups = [
        (label, table.series(axis, fixed)) for label, fixed in series_fixed
    ]
    values = [value for _label, series in groups for _x, value in series]
    if not values:
        raise ValueError("nothing to chart")
    scale = peak if peak is not None else max(values)
    if scale <= 0:
        raise ValueError(f"chart scale must be positive, got {scale}")
    out = io.StringIO()
    out.write((title or f"{table.name} by {axis}") + f"  (full bar = {scale:.1f})\n")
    for label, series in groups:
        out.write(f"{label}\n")
        for x, value in series:
            bar = "#" * max(1, round(width * min(value, scale) / scale))
            out.write(f"  {_axis_label(x):>8} |{bar:<{width}}| {value:7.2f}\n")
    return out.getvalue()


def to_csv(table: SweepTable) -> str:
    """CSV with one row per cell: axes, then the four statistics."""
    out = io.StringIO()
    out.write(",".join(table.axes) + ",min,median,mean,max,n\n")
    for key, stats in table.rows():
        out.write(
            ",".join(str(part) for part in key)
            + f",{stats.minimum:.3f},{stats.median:.3f},{stats.mean:.3f},"
            f"{stats.maximum:.3f},{stats.n_samples}\n"
        )
    return out.getvalue()
