"""PPE bandwidth experiments: Figures 3 (L1), 4 (L2) and 6 (memory).

The PPU runs a tight load/store/copy loop over a buffer resident at one
level of the hierarchy, with 1 or 2 SMT threads and element sizes from
1 to 16 bytes.  These are steady-state streaming loops, evaluated with
the closed-form structural model (:class:`repro.cell.ppe.PpeModel`);
see that module's docstring for why a cycle simulation would add nothing
here.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.cell.caches import ELEMENT_SIZES, LEVELS, OPS
from repro.cell.chip import CellChip
from repro.cell.errors import ConfigError
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable

#: Figure number per level, for report headers.
FIGURE_OF_LEVEL = {"l1": "Figure 3", "l2": "Figure 4", "mem": "Figure 6"}


class PpeBandwidthExperiment(Experiment):
    """One of the three PPE figures, selected by cache level."""

    name = "ppe-bandwidth"
    description = (
        "PPU load/store/copy bandwidth to L1/L2/main memory, 1-2 threads, "
        "1-16 B elements"
    )

    def __init__(
        self,
        level: str,
        ops: Sequence[str] = OPS,
        threads: Sequence[int] = (1, 2),
        element_sizes: Sequence[int] = ELEMENT_SIZES,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if level not in LEVELS:
            raise ConfigError(f"level must be one of {LEVELS}, got {level!r}")
        self.level = level
        self.ops = tuple(ops)
        self.threads = tuple(threads)
        self.element_sizes = tuple(element_sizes)
        self.name = f"{FIGURE_OF_LEVEL[level].lower().replace(' ', '')}-ppe-{level}"

    def run(self) -> ExperimentResult:
        chip = CellChip(config=self.config)
        hierarchy = chip.ppe.caches
        buffer_bytes = hierarchy.buffer_bytes_for(self.level)
        table = SweepTable(
            name=f"ppe-{self.level}",
            axes=("op", "threads", "element_bytes"),
        )
        notes = [
            f"{FIGURE_OF_LEVEL[self.level]}: buffer of {buffer_bytes} B per "
            f"working set (level {self.level})",
            f"peak (PPU-L1 link): {chip.ppe.peak_gbps():.1f} GB/s",
        ]
        for op in self.ops:
            working_sets = 2 if op == "copy" else 1
            if not hierarchy.fits(self.level, buffer_bytes // working_sets, working_sets):
                raise ConfigError(
                    f"buffer sizing bug: {buffer_bytes} B does not pin {self.level}"
                )
            for threads in self.threads:
                for element in self.element_sizes:
                    point = chip.ppe.explain(self.level, op, element, threads)
                    sample = BandwidthSample(
                        gbps=point.gbps,
                        nbytes=buffer_bytes,
                        cycles=max(
                            1,
                            round(
                                buffer_bytes
                                / max(point.gbps * 1e9, 1.0)
                                * self.config.clock.cpu_hz
                            ),
                        ),
                    )
                    table.put(
                        (op, threads, element),
                        BandwidthStats.from_samples([sample]),
                    )
                    notes.append(
                        f"{op}/{threads}t/{element}B limited by: {point.limiter}"
                    )
        return ExperimentResult(
            name=self.name,
            description=self.description,
            tables={"bandwidth": table},
            notes=notes,
        )
