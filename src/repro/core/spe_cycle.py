"""Cycle of SPEs: Figures 15 and 16 — the streaming pattern.

Every SPE initiates GET and PUT against its logical neighbour (modulo
the team size), so each SPE also serves its other neighbour's transfers:
two reads and two writes are active per SPE, and every element's on/off
ramps are shared by two flows.  This is the communication shape of a
streaming pipeline, and it deliberately saturates the EIB.  The paper's
findings:

* two SPEs reach the experiment's peak (33.6 GB/s — the ramp limit);
* four SPEs reach only ~50 of 67.2 GB/s and eight ~70 of 134.4 GB/s:
  *lower* than the couples experiment with half the flows, i.e.
  "saturating the EIB is counterproductive in terms of performance";
* placement still matters, but less than for couples (~20 GB/s spread
  for DMA-elem, ~10 for DMA-list): with this many flows every layout
  conflicts somewhere.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.cell.errors import ConfigError
from repro.core.experiment import (
    DMA_ELEMENT_SIZES,
    Experiment,
    ExperimentResult,
)
from repro.core.kernels import DmaWorkload
from repro.core.results import SweepTable

#: Figure 15 sweeps these ring sizes.
CYCLE_COUNTS = (2, 4, 8)


def cycle_assignments(
    n_spes: int, workload_for: callable
) -> list[tuple[int, DmaWorkload]]:
    """(initiator, workload) for each SPE against its logical neighbour."""
    if n_spes < 2:
        raise ConfigError(f"a cycle needs at least 2 SPEs, got {n_spes}")
    return [
        (initiator, workload_for(initiator, (initiator + 1) % n_spes))
        for initiator in range(n_spes)
    ]


class CycleExperiment(Experiment):
    """Figures 15 (averages) and 16 (placement statistics at 8 SPEs)."""

    name = "fig15-16-cycle"
    description = (
        "cycle of SPEs, every SPE doing GET+PUT with its logical "
        "neighbour; DMA-elem and DMA-list"
    )

    def __init__(
        self,
        spe_counts: Sequence[int] = CYCLE_COUNTS,
        element_sizes: Sequence[int] = DMA_ELEMENT_SIZES,
        modes: Sequence[str] = ("elem", "list"),
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.spe_counts = tuple(spe_counts)
        self.element_sizes = tuple(element_sizes)
        self.modes = tuple(modes)

    def run(self) -> ExperimentResult:
        result = ExperimentResult(name=self.name, description=self.description)
        for mode in self.modes:
            table = SweepTable(
                name=f"cycle-{mode}", axes=("n_spes", "element_bytes")
            )
            for n_spes in self.spe_counts:
                for element in self.element_sizes:
                    def workload_for(_initiator, partner):
                        return DmaWorkload(
                            direction="copy",
                            element_bytes=element,
                            n_elements=self.n_elements_for(element),
                            mode=mode,
                            partner_logical=partner,
                        )

                    stats = self.stats_over_seeds(
                        lambda _seed: cycle_assignments(n_spes, workload_for)
                    )
                    table.put((n_spes, element), stats)
            result.tables[mode] = table
        result.notes.append(
            "all SPEs active: twice the flows of the couples experiment, "
            "every ramp shared by two flows"
        )
        return result
