"""Couples of SPEs: Figures 12 and 13.

An even number of SPEs is split into pairs; the lower logical index of
each pair initiates simultaneous GET and PUT against its passive
partner.  Peak is 33.6 GB/s per pair (134.4 GB/s with four pairs).  The
paper's findings:

* one and two pairs sit at essentially peak bandwidth;
* four pairs average ~70% (DMA-elem) / ~60% (DMA-list) of peak, with a
  ~30 GB/s min-to-max spread across placements: with eight SPEs active
  the (uncontrollable) physical layout decides how many transfers
  collide on ring segments;
* DMA-list bandwidth is flat across element sizes, DMA-elem degrades
  below 1 KiB.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.cell.errors import ConfigError
from repro.core.experiment import (
    DMA_ELEMENT_SIZES,
    Experiment,
    ExperimentResult,
)
from repro.core.kernels import DmaWorkload
from repro.core.results import SweepTable

#: Figure 12 sweeps these team sizes (1, 2 and 4 pairs).
COUPLE_COUNTS = (2, 4, 8)


def couple_assignments(
    n_spes: int, workload_for: callable
) -> list[tuple[int, DmaWorkload]]:
    """(initiator, workload) pairs: SPE 0 with 1, 2 with 3, ..."""
    if n_spes % 2:
        raise ConfigError(f"couples need an even SPE count, got {n_spes}")
    assignments = []
    for initiator in range(0, n_spes, 2):
        assignments.append((initiator, workload_for(initiator, initiator + 1)))
    return assignments


class CouplesExperiment(Experiment):
    """Figures 12 (averages) and 13 (min/max/median/mean at 8 SPEs)."""

    name = "fig12-13-couples"
    description = (
        "pairs of SPEs, initiator doing GET+PUT against a passive "
        "partner; DMA-elem and DMA-list"
    )

    def __init__(
        self,
        spe_counts: Sequence[int] = COUPLE_COUNTS,
        element_sizes: Sequence[int] = DMA_ELEMENT_SIZES,
        modes: Sequence[str] = ("elem", "list"),
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.spe_counts = tuple(spe_counts)
        self.element_sizes = tuple(element_sizes)
        self.modes = tuple(modes)

    def run(self) -> ExperimentResult:
        result = ExperimentResult(name=self.name, description=self.description)
        for mode in self.modes:
            table = SweepTable(
                name=f"couples-{mode}", axes=("n_spes", "element_bytes")
            )
            for n_spes in self.spe_counts:
                for element in self.element_sizes:
                    def workload_for(_initiator, partner):
                        return DmaWorkload(
                            direction="copy",
                            element_bytes=element,
                            n_elements=self.n_elements_for(element),
                            mode=mode,
                            partner_logical=partner,
                        )

                    stats = self.stats_over_seeds(
                        lambda _seed: couple_assignments(n_spes, workload_for)
                    )
                    table.put((n_spes, element), stats)
            result.tables[mode] = table
        for n_spes in self.spe_counts:
            result.notes.append(
                f"peak for {n_spes} SPEs: "
                f"{self.config.couples_peak_gbps(n_spes):.1f} GB/s"
            )
        return result
