"""Shape validation: does a run reproduce the paper's claims?

Each ``check_*`` function takes the corresponding experiment's
:class:`~repro.core.experiment.ExperimentResult` and returns a list of
:class:`ClaimCheck` records — one per paper claim, with the observed
value, the expected band and a pass flag.  ``validate_all`` runs the
whole battery; ``summarize`` renders it.

These checks are also what ``tests/test_paper_shapes.py`` asserts, so
"the repository reproduces the paper" is a test, not a slogan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import reference
from repro.core.experiment import ExperimentResult
from repro.core.spe_pairs import SYNC_AFTER_ALL


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one paper claim against a run."""

    claim_id: str
    description: str
    observed: float
    expected_low: float
    expected_high: float
    passed: bool

    def __str__(self) -> str:
        flag = "ok " if self.passed else "FAIL"
        return (
            f"[{flag}] {self.claim_id}: observed {self.observed:.2f}, "
            f"expected [{self.expected_low:.2f}, {self.expected_high:.2f}] "
            f"- {self.description}"
        )


def _check(
    claim_id: str,
    description: str,
    observed: float,
    low: float,
    high: float,
) -> ClaimCheck:
    return ClaimCheck(
        claim_id=claim_id,
        description=description,
        observed=observed,
        expected_low=low,
        expected_high=high,
        passed=low <= observed <= high,
    )


def _check_ratio(
    claim_id: str, description: str, observed: float, target: float, tol: float
) -> ClaimCheck:
    return _check(
        claim_id, description, observed, target * (1 - tol), target * (1 + tol)
    )


# -- Figure 8 -------------------------------------------------------------------


def check_spe_memory(result: ExperimentResult, element: int = 16384) -> list[ClaimCheck]:
    ref = reference.SPE_MEMORY
    get = result.table("get")
    copy = result.table("copy")
    return [
        _check_ratio(
            "fig8-one-spe",
            "a single SPE sustains ~10 GB/s against memory",
            get.mean(1, element),
            ref["one_spe"],
            0.2,
        ),
        _check_ratio(
            "fig8-one-spe-copy",
            "one-SPE copy also ~10 GB/s ('regardless of the operation')",
            copy.mean(1, element),
            ref["one_spe"],
            0.2,
        ),
        _check_ratio(
            "fig8-two-spe-get",
            "two SPEs double it to ~20 GB/s (both banks active)",
            get.mean(2, element),
            ref["two_spe_get_put"],
            0.2,
        ),
        _check(
            "fig8-copy-max",
            "copy peaks around 23 GB/s",
            max(copy.mean(k, element) for k in copy.axis_values("n_spes")),
            ref["copy_max"] * 0.85,
            ref["copy_max"] * 1.15,
        ),
        _check(
            "fig8-rise-2-4",
            "bandwidth still rises from 2 to 4 SPEs",
            get.mean(4, element) - get.mean(2, element),
            0.0,
            float("inf"),
        ),
        _check(
            "fig8-drop-at-8",
            "bandwidth drops when all 8 SPEs are active",
            get.mean(4, element) - get.mean(8, element),
            0.0,
            float("inf"),
        ),
    ]


# -- Figures 9/10 ------------------------------------------------------------------


def check_pair_sync(result: ExperimentResult, peak: float = 33.6) -> list[ClaimCheck]:
    ref = reference.PAIR
    table = result.table("sync")
    delayed_16k = table.mean(SYNC_AFTER_ALL, 16384)
    delayed_1k = table.mean(SYNC_AFTER_ALL, 1024)
    delayed_512 = table.mean(SYNC_AFTER_ALL, 512)
    eager_4k = table.mean(1, 4096)
    delayed_4k = table.mean(SYNC_AFTER_ALL, 4096)
    return [
        _check(
            "fig10-near-peak-16k",
            "delayed sync reaches almost peak at large elements",
            delayed_16k,
            ref["near_peak_fraction"] * peak,
            peak,
        ),
        _check(
            "fig10-near-peak-1k",
            "almost peak already at 1024 B elements",
            delayed_1k,
            ref["near_peak_fraction"] * peak * 0.95,
            peak,
        ),
        _check(
            "fig10-degraded-512",
            "significant degradation below 1024 B",
            delayed_512,
            0.0,
            ref["small_elem_degraded_fraction"] * peak,
        ),
        _check(
            "fig10-sync-costs",
            "waiting after every DMA costs bandwidth in the 1-8 KiB range",
            delayed_4k - eager_4k,
            1.0,
            float("inf"),
        ),
    ]


def check_pair_distance(result: ExperimentResult) -> list[ClaimCheck]:
    ref = reference.PAIR
    table = result.table("distance")
    element = max(table.axis_values("element_bytes"))
    means = [
        table.mean(target, element) for target in table.axis_values("target_logical")
    ]
    return [
        _check(
            "fig9-distance-variation",
            "variation across partner SPEs stays small (paper: under 2 GB/s)",
            max(means) - min(means),
            0.0,
            ref["distance_variation_max"],
        )
    ]


# -- Figures 12/13 ------------------------------------------------------------------


def check_couples(result: ExperimentResult, element: int = 16384) -> list[ClaimCheck]:
    ref = reference.COUPLES
    peaks = reference.PEAKS
    elem = result.table("elem")
    checks = [
        _check(
            "fig12-pair-peak",
            "one pair sits at essentially peak",
            elem.mean(2, element),
            ref["small_team_peak_fraction"] * peaks["pair_read_write"],
            peaks["pair_read_write"],
        ),
        _check(
            "fig12-two-pairs-peak",
            "two pairs also near peak (random placement costs a few "
            "percent more than a single pair)",
            elem.mean(4, element),
            0.80 * 2 * peaks["pair_read_write"],
            2 * peaks["pair_read_write"],
        ),
    ]
    low_frac, high_frac = ref["eight_spe_mean_fraction_band"]
    for mode in ("elem", "list"):
        table = result.table(mode)
        stats = table.get(8, element)
        checks.append(
            _check(
                f"fig13-8spe-{mode}-mean",
                "four pairs average 60-75% of the 134.4 peak",
                stats.mean,
                low_frac * peaks["couples_8"],
                high_frac * peaks["couples_8"],
            )
        )
        checks.append(
            _check(
                f"fig13-8spe-{mode}-spread",
                "a large placement-driven min-max spread (paper ~30)",
                stats.spread,
                10.0,
                70.0,
            )
        )
    return checks


# -- Figures 15/16 -------------------------------------------------------------------


def check_cycle(
    result: ExperimentResult,
    couples_result: ExperimentResult | None = None,
    element: int = 16384,
) -> list[ClaimCheck]:
    ref = reference.CYCLE
    peaks = reference.PEAKS
    elem = result.table("elem")
    checks = [
        _check(
            "fig15-2spe-peak",
            "a 2-cycle reaches the 33.6 peak",
            elem.mean(2, element),
            ref["two_spe_peak_fraction"] * peaks["cycle_2"],
            peaks["cycle_2"],
        ),
        _check_ratio(
            "fig15-4spe",
            "a 4-cycle achieves ~50 of 67.2",
            elem.mean(4, element),
            ref["four_spe_mean"],
            0.2,
        ),
        _check_ratio(
            "fig15-8spe",
            "an 8-cycle achieves ~70 of 134.4",
            elem.mean(8, element),
            ref["eight_spe_mean"],
            0.3,
        ),
    ]
    if couples_result is not None:
        couples_mean = couples_result.table("elem").mean(8, element)
        checks.append(
            _check(
                "fig15-below-couples",
                "the cycle (twice the flows) is slower than the couples",
                couples_mean - elem.mean(8, element),
                0.0,
                float("inf"),
            )
        )
    stats_elem = elem.get(8, element)
    stats_list = result.table("list").get(8, element)
    # The paper reports elem spread ~20 vs list spread ~10; in the model
    # both modes hit the same ring conflicts at large elements, so we
    # only require the orderings to agree within a noise band (the paper
    # itself is internally inconsistent about elem-vs-list at 8 SPEs,
    # see core.reference.COUPLES).
    checks.append(
        _check(
            "fig16-spread-order",
            "DMA-elem spread is not smaller than DMA-list spread by more "
            "than placement noise",
            stats_elem.spread - stats_list.spread,
            -8.0,
            float("inf"),
        )
    )
    return checks


# -- Figures 3/4/6 ----------------------------------------------------------------------


def check_ppe(results: dict[str, ExperimentResult]) -> list[ClaimCheck]:
    """``results`` maps level ('l1','l2','mem') to the experiment result."""
    ref = reference.PPE
    l1 = results["l1"].table("bandwidth")
    l2 = results["l2"].table("bandwidth")
    mem = results["mem"].table("bandwidth")
    half_peak = reference.PEAKS["ppu_l1_link"] / 2
    return [
        _check_ratio(
            "fig3-l1-load-half-peak",
            "L1 load reaches half the 33.6 peak at >= 8 B elements",
            l1.mean("load", 1, 8),
            half_peak,
            0.05,
        ),
        _check(
            "fig3-l1-16b-no-gain",
            "16 B loads gain nothing over 8 B loads",
            l1.mean("load", 1, 16) - l1.mean("load", 1, 8),
            -0.01,
            0.01,
        ),
        _check_ratio(
            "fig3-proportional",
            "bandwidth proportional to element size below 8 B",
            l1.mean("load", 1, 4) / l1.mean("load", 1, 8),
            0.5,
            0.05,
        ),
        _check(
            "fig4-l2-below-l1",
            "L2 much lower than L1",
            l1.mean("load", 1, 16) / l2.mean("load", 1, 16),
            2.0,
            float("inf"),
        ),
        _check_ratio(
            "fig4-l2-store-twice-load",
            "L2 stores almost twice the loads at one thread",
            l2.mean("store", 1, 16) / l2.mean("load", 1, 16),
            reference.PPE["l2_store_load_ratio_1t"],
            0.2,
        ),
        _check(
            "fig4-two-threads-help",
            "two threads significantly raise L2 load bandwidth",
            l2.mean("load", 2, 16) / l2.mean("load", 1, 16),
            1.3,
            float("inf"),
        ),
        _check(
            "fig6-mem-load-equals-l2",
            "memory loads match L2 loads",
            mem.mean("load", 1, 16) / l2.mean("load", 1, 16),
            0.9,
            1.1,
        ),
        _check(
            "fig6-mem-store-low",
            "memory stores far below L2 stores",
            l2.mean("store", 1, 16) / mem.mean("store", 1, 16),
            1.5,
            float("inf"),
        ),
        _check(
            "fig6-mem-under-6",
            "all PPE-to-memory results sit under 6 GB/s",
            max(
                mem.mean(op, threads, 16)
                for op in ("load", "store", "copy")
                for threads in (1, 2)
            ),
            0.0,
            ref["mem_under"],
        ),
    ]


def check_localstore(result: ExperimentResult) -> list[ClaimCheck]:
    table = result.table("bandwidth")
    return [
        _check_ratio(
            "sec422-ls-peak",
            "SPU reaches the 33.6 GB/s LS peak with 16 B accesses",
            table.mean("load", 16),
            reference.SPU_LS["peak_at_16b"],
            0.01,
        )
    ]


def summarize(checks: list[ClaimCheck]) -> str:
    lines = [str(check) for check in checks]
    passed = sum(1 for check in checks if check.passed)
    lines.append(f"{passed}/{len(checks)} claims reproduced")
    return "\n".join(lines)
