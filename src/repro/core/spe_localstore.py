"""SPU <-> local store load/store bandwidth: section 4.2.2 (no figure).

The paper measures the SPU's load/store path to its own local store with
the same 1-16 B element sweep as the PPE and reports that the 33.6 GB/s
peak is reached for 16 B transfers ("there is no interference from the
OS or other running threads").  Like the PPE paths this is a steady-state
streaming loop, evaluated with the structural SPU model.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.cell.chip import CellChip
from repro.cell.spe import SPU_ELEMENT_SIZES
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable


class SpeLocalStoreExperiment(Experiment):
    """Section 4.2.2: SPU load/store/copy against its local store."""

    name = "sec422-spe-localstore"
    description = "SPU <-> LS load/store bandwidth, 1-16 B elements"

    def __init__(
        self,
        ops: Sequence[str] = ("load", "store", "copy"),
        element_sizes: Sequence[int] = SPU_ELEMENT_SIZES,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.ops = tuple(ops)
        self.element_sizes = tuple(element_sizes)

    def run(self) -> ExperimentResult:
        chip = CellChip(config=self.config)
        spe = chip.spe(0)
        table = SweepTable(name="spu-ls", axes=("op", "element_bytes"))
        for op in self.ops:
            for element in self.element_sizes:
                gbps = spe.ls_bandwidth_gbps(op, element)
                sample = BandwidthSample(
                    gbps=gbps,
                    nbytes=self.bytes_per_spe,
                    cycles=max(
                        1,
                        round(
                            self.bytes_per_spe
                            / (gbps * 1e9)
                            * self.config.clock.cpu_hz
                        ),
                    ),
                )
                table.put((op, element), BandwidthStats.from_samples([sample]))
        return ExperimentResult(
            name=self.name,
            description=self.description,
            tables={"bandwidth": table},
            notes=[
                f"peak (one quadword per cycle): "
                f"{self.config.local_store_peak_gbps:.1f} GB/s",
                "SPUs run only user code: no OS interference term",
            ],
        )
