"""Result containers: samples, statistics, sweep tables.

The paper reports min/maximum/median/mean bandwidth over ten runs with
different (uncontrollable) SPE placements; :class:`BandwidthStats` is
exactly that reduction.  A :class:`SweepTable` holds one figure's worth
of data: statistics keyed by the swept parameters.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence

@dataclass(frozen=True)
class BandwidthSample:
    """One timed run: bytes moved over elapsed cycles, plus context."""

    gbps: float
    nbytes: int
    cycles: int
    seed: int | None = None

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError(f"sample of {self.nbytes} bytes")
        if self.cycles <= 0:
            raise ValueError(f"sample over {self.cycles} cycles")
        if self.gbps <= 0:
            raise ValueError(f"sample at {self.gbps} GB/s")


@dataclass(frozen=True)
class BandwidthStats:
    """The paper's four reductions over repeated runs."""

    minimum: float
    maximum: float
    median: float
    mean: float
    n_samples: int

    @classmethod
    def from_samples(cls, samples: Sequence[BandwidthSample]) -> BandwidthStats:
        if not samples:
            raise ValueError("no samples to reduce")
        values = [sample.gbps for sample in samples]
        return cls(
            minimum=min(values),
            maximum=max(values),
            median=statistics.median(values),
            mean=statistics.fmean(values),
            n_samples=len(values),
        )

    @property
    def spread(self) -> float:
        """Max minus min: the paper's placement-sensitivity measure."""
        return self.maximum - self.minimum

    def __str__(self) -> str:
        return (
            f"min {self.minimum:.1f} / median {self.median:.1f} / "
            f"mean {self.mean:.1f} / max {self.maximum:.1f} GB/s"
            f" ({self.n_samples} runs)"
        )


@dataclass
class SweepTable:
    """One figure's data: stats keyed by swept-parameter tuples.

    ``axes`` names the key components, e.g. ``("n_spes", "element_bytes")``.
    """

    name: str
    axes: tuple[str, ...]
    cells: dict[tuple, BandwidthStats] = field(default_factory=dict)

    def put(self, key: tuple, stats: BandwidthStats) -> None:
        if len(key) != len(self.axes):
            raise ValueError(
                f"key {key} does not match axes {self.axes} of {self.name!r}"
            )
        self.cells[key] = stats

    def get(self, *key) -> BandwidthStats:
        if tuple(key) not in self.cells:
            raise KeyError(f"{key} not measured in {self.name!r}")
        return self.cells[tuple(key)]

    def mean(self, *key) -> float:
        """Shortcut: the mean bandwidth at a key."""
        return self.get(*key).mean

    def axis_values(self, axis: str) -> list:
        """Distinct values of one axis, in insertion order."""
        if axis not in self.axes:
            raise KeyError(f"{self.name!r} has axes {self.axes}, not {axis!r}")
        position = self.axes.index(axis)
        seen: list = []
        for key in self.cells:
            if key[position] not in seen:
                seen.append(key[position])
        return seen

    def series(self, axis: str, fixed: Mapping[str, object]) -> list[tuple[object, float]]:
        """A (axis value, mean GB/s) series with the other axes fixed —
        one curve of a figure."""
        for name in fixed:
            if name not in self.axes:
                raise KeyError(f"{name!r} is not an axis of {self.name!r}")
        position = self.axes.index(axis)
        points = []
        for key, stats in self.cells.items():
            bound = dict(zip(self.axes, key, strict=True))
            if all(bound[name] == value for name, value in fixed.items()):
                points.append((key[position], stats.mean))
        points.sort(key=lambda pair: pair[0])
        return points

    def rows(self) -> Iterable[tuple[tuple, BandwidthStats]]:
        return self.cells.items()

    def __len__(self) -> int:
        return len(self.cells)
