"""The paper's contribution: the bandwidth measurement suite.

One experiment class per experiment in the paper's evaluation section,
all built on a shared protocol (:mod:`repro.core.experiment`): build a
fresh chip per repetition with a seeded random logical-to-physical SPE
mapping (the paper's "10 runs to test different logical to physical SPE
mappings"), run the SPU microkernels (:mod:`repro.core.kernels`), time
them with the decrementer, and reduce to min/max/median/mean statistics
(:mod:`repro.core.results`).

The paper's reported numbers and shape claims live in
:mod:`repro.core.reference`; :mod:`repro.core.validation` checks a run
against them, and :mod:`repro.core.report` renders the figures' data as
text tables.
"""

from repro.core.cache import ResultCache, repro_code_version
from repro.core.experiment import Experiment, ExperimentResult, RunSpec, run_spec
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.core.ppe_bandwidth import PpeBandwidthExperiment
from repro.core.results import BandwidthSample, BandwidthStats, SweepTable
from repro.core.spe_couples import CouplesExperiment
from repro.core.spe_cycle import CycleExperiment
from repro.core.spe_localstore import SpeLocalStoreExperiment
from repro.core.spe_memory import SpeMemoryExperiment
from repro.core.spe_pairs import PairDistanceExperiment, PairSyncExperiment

__all__ = [
    "BandwidthSample",
    "BandwidthStats",
    "CouplesExperiment",
    "CycleExperiment",
    "DmaWorkload",
    "Experiment",
    "ExperimentResult",
    "PairDistanceExperiment",
    "PairSyncExperiment",
    "PpeBandwidthExperiment",
    "ResultCache",
    "RunSpec",
    "SpeLocalStoreExperiment",
    "SpeMemoryExperiment",
    "SweepTable",
    "dma_stream_kernel",
    "repro_code_version",
    "run_spec",
]
