"""Single-pair SPE-to-SPE experiments: Figures 9/10.

One SPE initiates simultaneous GET and PUT DMA against a passive
partner's local store (peak 33.6 GB/s).  Two experiments:

* :class:`PairSyncExperiment` (Figure 10): how much delaying the tag
  wait matters — synchronise after every 1, 2, 4, ... commands versus
  only once at the end.  The paper: saturating the MFC queue is vital,
  "especially for DMA elements between 1024 bytes and 8 KB".
* :class:`PairDistanceExperiment` (the Figure 9 setup): logical SPE 0
  against each other logical SPE, over random placements — the paper
  finds only a very small (< 2 GB/s) dependence on physical distance.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.core.experiment import (
    DMA_ELEMENT_SIZES,
    Experiment,
    ExperimentResult,
)
from repro.core.kernels import DmaWorkload
from repro.core.results import SweepTable

#: Sentinel sync policy: wait only after all commands (sorts last).
SYNC_AFTER_ALL = 2 ** 30

#: Figure 10's sync-delay sweep.
SYNC_POLICIES = (1, 2, 4, 8, 16, 32, SYNC_AFTER_ALL)


class PairSyncExperiment(Experiment):
    """Figure 10: delayed DMA-elem synchronisation in SPE-to-SPE pairs."""

    name = "fig10-pair-sync"
    description = (
        "bandwidth of one active SPE doing GET+PUT against a passive "
        "partner, synchronising after every k DMA commands"
    )

    def __init__(
        self,
        sync_policies: Sequence[int] = SYNC_POLICIES,
        element_sizes: Sequence[int] = DMA_ELEMENT_SIZES,
        repetitions: int = 3,
        **kwargs,
    ):
        super().__init__(repetitions=repetitions, **kwargs)
        self.sync_policies = tuple(sync_policies)
        self.element_sizes = tuple(element_sizes)

    def run(self) -> ExperimentResult:
        table = SweepTable(
            name="pair-sync", axes=("sync_every", "element_bytes")
        )
        for sync_every in self.sync_policies:
            for element in self.element_sizes:
                workload = DmaWorkload(
                    direction="copy",
                    element_bytes=element,
                    n_elements=self.n_elements_for(element),
                    sync_every=None if sync_every == SYNC_AFTER_ALL else sync_every,
                    partner_logical=1,
                )
                stats = self.stats_over_seeds(lambda _seed: [(0, workload)])
                table.put((sync_every, element), stats)
        return ExperimentResult(
            name=self.name,
            description=self.description,
            tables={"sync": table},
            notes=[
                f"peak (read+write): {self.config.pair_peak_gbps:.1f} GB/s",
                f"sync_every={SYNC_AFTER_ALL} encodes 'only after all requests'",
            ],
        )


class PairDistanceExperiment(Experiment):
    """Figure 9's setup: logical SPE 0 to every other logical SPE."""

    name = "fig09-pair-distance"
    description = (
        "GET+PUT bandwidth between logical SPE 0 and each other logical "
        "SPE, over random physical placements"
    )

    def __init__(
        self,
        element_sizes: Sequence[int] = (4096, 16384),
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.element_sizes = tuple(element_sizes)

    def run(self) -> ExperimentResult:
        table = SweepTable(
            name="pair-distance", axes=("target_logical", "element_bytes")
        )
        for target in range(1, self.config.n_spes):
            for element in self.element_sizes:
                workload = DmaWorkload(
                    direction="copy",
                    element_bytes=element,
                    n_elements=self.n_elements_for(element),
                    partner_logical=target,
                )
                stats = self.stats_over_seeds(lambda _seed: [(0, workload)])
                table.put((target, element), stats)
        return ExperimentResult(
            name=self.name,
            description=self.description,
            tables={"distance": table},
            notes=[
                "the paper: variation among targets stays under 2 GB/s "
                "because a lone pair never conflicts on the rings"
            ],
        )
