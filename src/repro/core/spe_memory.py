"""SPE <-> main memory DMA bandwidth: Figure 8.

Weak scaling over 1/2/4/8 active SPEs, element sizes 128 B to 16 KiB,
for GET, PUT and GET+PUT (copy).  Each SPE streams its own buffer; the
warm-up lap and fully delayed synchronisation follow the paper's
recommended policy.  The paper's findings this experiment reproduces:

* one SPE sustains ~10 GB/s regardless of the operation (60% of the MIC
  bank's peak for GET/PUT, 30% of the bidirectional peak for copy);
* two SPEs roughly double it (~20 GB/s), proving both banks are used;
* copy peaks around 23 GB/s;
* bandwidth still rises from 2 to 4 SPEs, then *drops* with all 8
  active — so two 4-SPE streams beat one 8-SPE stream.
"""

from __future__ import annotations
from collections.abc import Sequence

from repro.core.experiment import (
    DMA_ELEMENT_SIZES,
    Experiment,
    ExperimentResult,
)
from repro.core.kernels import DmaWorkload
from repro.core.results import SweepTable

#: Figure 8 sweeps these SPE counts.
SPE_COUNTS = (1, 2, 4, 8)


class SpeMemoryExperiment(Experiment):
    """Figure 8 (a: GET, b: PUT, c: GET+PUT)."""

    name = "fig08-spe-memory"
    description = (
        "DMA-elem bandwidth between SPEs and main memory, weak scaling "
        "over 1-8 SPEs and 128 B-16 KiB elements"
    )

    def __init__(
        self,
        spe_counts: Sequence[int] = SPE_COUNTS,
        element_sizes: Sequence[int] = DMA_ELEMENT_SIZES,
        directions: Sequence[str] = ("get", "put", "copy"),
        mode: str = "elem",
        repetitions: int = 3,
        **kwargs,
    ):
        # Memory bandwidth barely depends on SPE placement (the banks
        # dominate), so fewer repetitions suffice than for the SPE-to-SPE
        # experiments; the figure plots averages only.
        super().__init__(repetitions=repetitions, **kwargs)
        self.spe_counts = tuple(spe_counts)
        self.element_sizes = tuple(element_sizes)
        self.directions = tuple(directions)
        self.mode = mode

    def run(self) -> ExperimentResult:
        result = ExperimentResult(name=self.name, description=self.description)
        for direction in self.directions:
            table = SweepTable(
                name=f"mem-{direction}", axes=("n_spes", "element_bytes")
            )
            for n_spes in self.spe_counts:
                for element in self.element_sizes:
                    workload = DmaWorkload(
                        direction=direction,
                        element_bytes=element,
                        n_elements=self.n_elements_for(element),
                        mode=self.mode,
                    )
                    stats = self.stats_over_seeds(
                        lambda _seed: [
                            (logical, workload) for logical in range(n_spes)
                        ]
                    )
                    table.put((n_spes, element), stats)
            result.tables[direction] = table
        result.notes.append(
            "weak scaling: every active SPE streams its own buffer; "
            "synchronisation fully delayed (tag wait only at the end)"
        )
        return result
