"""The SPU microkernels every DMA experiment runs.

These are the model's equivalents of the paper's hand-optimised C codes:
a warm-up lap, then a timed loop issuing DMA commands with a chosen
synchronisation policy.  All the paper's programming-rule knobs appear
here as workload parameters:

* ``mode``: ``"elem"`` (one MFC command per chunk) vs ``"list"`` (DMA
  lists);
* ``sync_every``: wait for outstanding tags after every k commands
  (``None`` = only at the very end, the paper's recommended policy);
* ``direction``: ``get``, ``put`` or ``copy`` (GET+PUT);
* the loop is unrolled or not at the :class:`~repro.libspe.SpeContext`
  level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cell.errors import ConfigError
from repro.cell.spe import Spe
from repro.libspe import SpuRuntime

#: Directions an experiment can request.
DIRECTIONS = ("get", "put", "copy")

#: Command modes.
MODES = ("elem", "list")


@dataclass(frozen=True)
class _Window:
    """A rotating run of DMA buffers inside a disjoint LS region.

    The paper's codes double-buffer; the model's equivalent is rotating
    each direction's commands through as many element-sized buffers as
    its LS window holds, so an in-flight transfer and the next command
    touch different bytes (the DMA hazard sanitizer checks exactly
    this).  The remote side mirrors the local offset, which keeps GET
    and PUT ranges disjoint on the far side too and trivially satisfies
    the MFC's matching-alignment rule.
    """

    base: int
    nbuf: int
    element_bytes: int

    def offset(self, index: int) -> int:
        return self.base + (index % self.nbuf) * self.element_bytes


def _buffer_windows(spu: SpuRuntime, workload: DmaWorkload) -> dict[int, _Window]:
    """Per-tag rotating buffer windows (GET = tag 0, PUT = tag 1)."""
    ls = spu.spe.local_store.size
    elem = workload.element_bytes
    if workload.direction == "copy":
        half = ls // 2
        return {
            0: _Window(base=0, nbuf=max(1, half // elem), element_bytes=elem),
            1: _Window(base=half, nbuf=max(1, half // elem), element_bytes=elem),
        }
    tag = 0 if workload.direction == "get" else 1
    return {tag: _Window(base=0, nbuf=max(1, ls // elem), element_bytes=elem)}


@dataclass(frozen=True)
class DmaWorkload:
    """Everything one SPE does in a timed run."""

    direction: str
    element_bytes: int
    n_elements: int
    mode: str = "elem"
    sync_every: int | None = None
    partner_logical: int | None = None  # None = main memory

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ConfigError(f"direction must be one of {DIRECTIONS}")
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}")
        if self.n_elements < 1:
            raise ConfigError(f"n_elements must be >= 1, got {self.n_elements}")
        if self.sync_every is not None and self.sync_every < 1:
            raise ConfigError(f"sync_every must be >= 1, got {self.sync_every}")

    @property
    def total_bytes(self) -> int:
        """Bytes this SPE moves (copy counts both directions)."""
        factor = 2 if self.direction == "copy" else 1
        return factor * self.element_bytes * self.n_elements


def dma_stream_kernel(
    spu: SpuRuntime,
    workload: DmaWorkload,
    out: dict,
    partner: Spe | None = None,
):
    """The timed SPU program.  Writes ``cycles`` and ``bytes`` to ``out``.

    GET uses tag 0 and PUT tag 1, like the paper's codes, so a ``copy``
    can wait on both streams at once.
    """
    if workload.partner_logical is not None and partner is None:
        raise ConfigError("workload targets an SPE but no partner was given")

    tags = {"get": (0,), "put": (1,), "copy": (0, 1)}[workload.direction]
    windows = _buffer_windows(spu, workload)

    # Warm-up lap: touch the buffers once so the timed region has no
    # first-touch effects (the paper warms TLBs and page tables the same
    # way).  One command per direction is enough in the model.
    for tag in tags:
        offset = windows[tag].offset(0)
        if tag == 0:
            yield from spu.mfc_get(
                size=workload.element_bytes, tag=tag, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        else:
            yield from spu.mfc_put(
                size=workload.element_bytes, tag=tag, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
    yield from spu.wait_tags(tags)

    start = spu.read_decrementer()
    if workload.mode == "elem":
        yield from _elem_loop(spu, workload, partner, tags, windows)
    else:
        yield from _list_loop(spu, workload, partner, tags)
    yield from spu.wait_tags(tags)
    end = spu.read_decrementer()

    out["start"] = start
    out["end"] = end
    out["cycles"] = end - start
    out["bytes"] = workload.total_bytes


def _elem_loop(spu, workload, partner, tags, windows):
    issued = 0
    since_sync = 0
    for _ in range(workload.n_elements):
        if workload.direction in ("get", "copy"):
            offset = windows[0].offset(issued)
            yield from spu.mfc_get(
                size=workload.element_bytes, tag=0, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        if workload.direction in ("put", "copy"):
            offset = windows[1].offset(issued)
            yield from spu.mfc_put(
                size=workload.element_bytes, tag=1, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        issued += 1
        since_sync += 1
        if workload.sync_every is not None and since_sync >= workload.sync_every:
            yield from spu.wait_tags(tags)
            since_sync = 0


def _list_loop(spu, workload, partner, tags):
    limit = spu.spe.config.mfc.list_max_elements
    batch = workload.sync_every or limit
    batch = min(batch, limit)
    issued = 0
    while issued < workload.n_elements:
        chunk = min(batch, workload.n_elements - issued)
        if workload.direction in ("get", "copy"):
            yield from spu.mfc_getl(
                element_size=workload.element_bytes,
                n_elements=chunk,
                tag=0,
                remote_spe=partner,
            )
        if workload.direction in ("put", "copy"):
            yield from spu.mfc_putl(
                element_size=workload.element_bytes,
                n_elements=chunk,
                tag=1,
                remote_spe=partner,
            )
        issued += chunk
        if workload.sync_every is not None:
            yield from spu.wait_tags(tags)
