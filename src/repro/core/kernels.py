"""The SPU microkernels every DMA experiment runs.

These are the model's equivalents of the paper's hand-optimised C codes:
a warm-up lap, then a timed loop issuing DMA commands with a chosen
synchronisation policy.  All the paper's programming-rule knobs appear
here as workload parameters:

* ``mode``: ``"elem"`` (one MFC command per chunk) vs ``"list"`` (DMA
  lists);
* ``sync_every``: wait for outstanding tags after every k commands
  (``None`` = only at the very end, the paper's recommended policy);
* ``direction``: ``get``, ``put`` or ``copy`` (GET+PUT);
* the loop is unrolled or not at the :class:`~repro.libspe.SpeContext`
  level.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush

from repro.cell.dma import DmaDirection, TargetKind, validate_transfer
from repro.cell.errors import CellError, ConfigError
from repro.cell.mfc import FastDmaCommand, FastDmaList
from repro.cell.spe import Spe
from repro.libspe import SpuRuntime
from repro.sim.engine_fast import FastActor, FastEnvironment

#: Directions an experiment can request.
DIRECTIONS = ("get", "put", "copy")

#: Command modes.
MODES = ("elem", "list")


@dataclass(frozen=True)
class _Window:
    """A rotating run of DMA buffers inside a disjoint LS region.

    The paper's codes double-buffer; the model's equivalent is rotating
    each direction's commands through as many element-sized buffers as
    its LS window holds, so an in-flight transfer and the next command
    touch different bytes (the DMA hazard sanitizer checks exactly
    this).  The remote side mirrors the local offset, which keeps GET
    and PUT ranges disjoint on the far side too and trivially satisfies
    the MFC's matching-alignment rule.
    """

    base: int
    nbuf: int
    element_bytes: int

    def offset(self, index: int) -> int:
        return self.base + (index % self.nbuf) * self.element_bytes


def _windows_for(ls_size: int, workload: DmaWorkload) -> dict[int, _Window]:
    """Per-tag rotating buffer windows (GET = tag 0, PUT = tag 1) for a
    local store of ``ls_size`` bytes.  Shared by both kernel forms."""
    elem = workload.element_bytes
    if workload.direction == "copy":
        half = ls_size // 2
        return {
            0: _Window(base=0, nbuf=max(1, half // elem), element_bytes=elem),
            1: _Window(base=half, nbuf=max(1, half // elem), element_bytes=elem),
        }
    tag = 0 if workload.direction == "get" else 1
    return {tag: _Window(base=0, nbuf=max(1, ls_size // elem), element_bytes=elem)}


def _buffer_windows(spu: SpuRuntime, workload: DmaWorkload) -> dict[int, _Window]:
    """Per-tag rotating buffer windows (GET = tag 0, PUT = tag 1)."""
    return _windows_for(spu.spe.local_store.size, workload)


@dataclass(frozen=True)
class DmaWorkload:
    """Everything one SPE does in a timed run."""

    direction: str
    element_bytes: int
    n_elements: int
    mode: str = "elem"
    sync_every: int | None = None
    partner_logical: int | None = None  # None = main memory

    def __post_init__(self):
        if self.direction not in DIRECTIONS:
            raise ConfigError(f"direction must be one of {DIRECTIONS}")
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}")
        if self.n_elements < 1:
            raise ConfigError(f"n_elements must be >= 1, got {self.n_elements}")
        if self.sync_every is not None and self.sync_every < 1:
            raise ConfigError(f"sync_every must be >= 1, got {self.sync_every}")

    @property
    def total_bytes(self) -> int:
        """Bytes this SPE moves (copy counts both directions)."""
        factor = 2 if self.direction == "copy" else 1
        return factor * self.element_bytes * self.n_elements


def dma_stream_kernel(
    spu: SpuRuntime,
    workload: DmaWorkload,
    out: dict,
    partner: Spe | None = None,
):
    """The timed SPU program.  Writes ``cycles`` and ``bytes`` to ``out``.

    GET uses tag 0 and PUT tag 1, like the paper's codes, so a ``copy``
    can wait on both streams at once.
    """
    if workload.partner_logical is not None and partner is None:
        raise ConfigError("workload targets an SPE but no partner was given")

    tags = {"get": (0,), "put": (1,), "copy": (0, 1)}[workload.direction]
    windows = _buffer_windows(spu, workload)

    # Warm-up lap: touch the buffers once so the timed region has no
    # first-touch effects (the paper warms TLBs and page tables the same
    # way).  One command per direction is enough in the model.
    for tag in tags:
        offset = windows[tag].offset(0)
        if tag == 0:
            yield from spu.mfc_get(
                size=workload.element_bytes, tag=tag, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        else:
            yield from spu.mfc_put(
                size=workload.element_bytes, tag=tag, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
    yield from spu.wait_tags(tags)

    start = spu.read_decrementer()
    if workload.mode == "elem":
        yield from _elem_loop(spu, workload, partner, tags, windows)
    else:
        yield from _list_loop(spu, workload, partner, tags)
    yield from spu.wait_tags(tags)
    end = spu.read_decrementer()

    out["start"] = start
    out["end"] = end
    out["cycles"] = end - start
    out["bytes"] = workload.total_bytes


def _elem_loop(spu, workload, partner, tags, windows):
    issued = 0
    since_sync = 0
    for _ in range(workload.n_elements):
        if workload.direction in ("get", "copy"):
            offset = windows[0].offset(issued)
            yield from spu.mfc_get(
                size=workload.element_bytes, tag=0, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        if workload.direction in ("put", "copy"):
            offset = windows[1].offset(issued)
            yield from spu.mfc_put(
                size=workload.element_bytes, tag=1, remote_spe=partner,
                local_offset=offset, remote_offset=offset,
            )
        issued += 1
        since_sync += 1
        if workload.sync_every is not None and since_sync >= workload.sync_every:
            yield from spu.wait_tags(tags)
            since_sync = 0


def _list_loop(spu, workload, partner, tags):
    limit = spu.spe.config.mfc.list_max_elements
    batch = workload.sync_every or limit
    batch = min(batch, limit)
    issued = 0
    while issued < workload.n_elements:
        chunk = min(batch, workload.n_elements - issued)
        if workload.direction in ("get", "copy"):
            yield from spu.mfc_getl(
                element_size=workload.element_bytes,
                n_elements=chunk,
                tag=0,
                remote_spe=partner,
            )
        if workload.direction in ("put", "copy"):
            yield from spu.mfc_putl(
                element_size=workload.element_bytes,
                n_elements=chunk,
                tag=1,
                remote_spe=partner,
            )
        issued += chunk
        if workload.sync_every is not None:
            yield from spu.wait_tags(tags)


class FastStreamKernel(FastActor):
    """:func:`dma_stream_kernel` as a flat coalescing-engine actor.

    One state method per resume point of the generator program: warmup
    commands, the timed elem/list loop, tag syncs, the final drain.  The
    issue-cost, validation and tag rules are the SpuRuntime's, applied
    in the same order, so a fast run replays the reference run's heap
    schedule exactly (see :mod:`repro.sim.engine_fast` for the three
    coalescings that make it cheaper, not different).
    """

    __slots__ = (
        "spe",
        "mfc",
        "workload",
        "out",
        "partner_node",
        "name",
        "finished",
        "_tags",
        "_windows",
        "_target",
        "_direction",
        "_elem_bytes",
        "_n",
        "_sync_every",
        "_issue_cycles",
        "_list_issue_cycles",
        "_sync_cycles",
        "_limit",
        "_batch",
        "_chunk",
        "_issued",
        "_since_sync",
        "_warm_i",
        "_t_start",
        "_pend_tag",
        "_after_issue",
        "_after_sync",
        "_fast_slots",
        "_ff_anchor",
    )

    def __init__(
        self,
        env: FastEnvironment,
        spe: Spe,
        workload: DmaWorkload,
        out: dict,
        partner: Spe | None = None,
        unrolled: bool = True,
    ):
        super().__init__(env)
        if workload.partner_logical is not None and partner is None:
            raise ConfigError("workload targets an SPE but no partner was given")
        self.spe = spe
        self.mfc = spe.mfc
        self.workload = workload
        self.out = out
        self.partner_node = None if partner is None else partner.node
        self._target = (
            TargetKind.MAIN_MEMORY if partner is None else TargetKind.LOCAL_STORE
        )
        self._tags = {"get": (0,), "put": (1,), "copy": (0, 1)}[workload.direction]
        self._windows = _windows_for(spe.local_store.size, workload)
        self._direction = workload.direction
        self._elem_bytes = workload.element_bytes
        self._n = workload.n_elements
        self._sync_every = workload.sync_every
        mfccfg = spe.config.mfc
        cost = mfccfg.elem_issue_cycles
        if not unrolled:
            cost *= mfccfg.rolled_loop_issue_factor
        self._issue_cycles = cost
        self._list_issue_cycles = mfccfg.list_issue_cycles
        self._sync_cycles = mfccfg.sync_cycles
        self._limit = mfccfg.list_max_elements
        self._fast_slots = self.mfc._fast_slots
        # DmaCommand/DmaList construction-time checks, hoisted out of the
        # issue loop: every offset this kernel ever uses is
        # base + (index % nbuf) * element_bytes, an arithmetic
        # progression, so indices 0 and 1 cover every distinct
        # size/alignment case (the same reduction _list_built documents
        # for uniform list elements, whose offsets 0 and size these two
        # checks also subsume).
        for tag in self._tags:
            window = self._windows[tag]
            validate_transfer(self._elem_bytes, window.offset(0), window.offset(0))
            validate_transfer(self._elem_bytes, window.offset(1), window.offset(1))
        self.name = f"fast-kernel {spe.node}"
        self.finished = False
        self._ff_anchor = env.register_kernel(self)
        # The program's start relay (spe_create_thread).
        self._after(0, self._start)

    # -- issue helpers (SpuRuntime._issue_elem / _issue_list) --------------------

    def _issue_elem(self, tag: int, after) -> None:
        self._pend_tag = tag
        self._after_issue = after
        # _after inlined (hottest kernel scheduling site), with a
        # tail-warp: every call chain reaching here from a heap pop is
        # in tail position (the program states below only ever end in
        # each other), so when the issue slot would be the strictly
        # earliest event — no tie possible — advancing the clock and
        # running it inline is indistinguishable from popping it.
        env = self.env
        queue = env._queue
        target = env.now + self._issue_cycles
        if not queue or queue[0][0] > target:
            env.now = target
            self._elem_built()
        else:
            self._run_callbacks = self._elem_built
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (target, sequence, self))

    def _elem_built(self) -> None:
        # Mfc.fast_claim_slot, inlined (validation was hoisted to
        # construction; see __init__), with the slot-grant relay's
        # zero-delay hop guard open-coded.
        slots = self._fast_slots
        if slots.count < slots.capacity:
            slots.count += 1
            env = self.env
            queue = env._queue
            if queue and queue[0][0] == env.now:
                self._run_callbacks = self._elem_slotted
                env._sequence = sequence = env._sequence + 1
                heappush(queue, (env.now, sequence, self))
            else:
                # _elem_slotted inlined, with the pooled shell's restart
                # relay resolved statically: the guard above established
                # nothing else fires this tick, and the enqueue counters
                # below push nothing, so the relay's own guard (the same
                # expression) must also take the inline branch — the
                # mover starts directly.
                tag = self._pend_tag
                mfc = self.mfc
                mfc._tag_enqueued[tag] += 1
                mfc._total_enqueued += 1
                mfc._outstanding[tag] += 1
                direction = DmaDirection.GET if tag == 0 else DmaDirection.PUT
                pool = mfc._fast_pool
                if pool:
                    shell = pool.pop()
                    shell.tag = tag
                    shell._mv_direction = direction
                    shell._mv_target = self._target
                    shell._mv_remote = self.partner_node
                    shell.nbytes = self._elem_bytes
                    shell._move_begin()
                else:
                    FastDmaCommand(
                        env,
                        mfc,
                        direction,
                        self._target,
                        self.partner_node,
                        self._elem_bytes,
                        tag,
                    )
                self._after_issue()
        else:
            slots.queue.append(self)
            self._park(self._elem_slotted)

    def _elem_slotted(self) -> None:
        tag = self._pend_tag
        mfc = self.mfc
        # Mfc._register_enqueue (never sanitizing under the fast engine),
        # then the executor machine — the reference enqueue's order.
        mfc._tag_enqueued[tag] += 1
        mfc._total_enqueued += 1
        mfc._outstanding[tag] += 1
        pool = mfc._fast_pool
        if pool:
            # FastDmaCommand._restart, inlined (same fields, same start
            # relay guard).
            shell = pool.pop()
            shell.tag = tag
            shell._mv_direction = DmaDirection.GET if tag == 0 else DmaDirection.PUT
            shell._mv_target = self._target
            shell._mv_remote = self.partner_node
            shell.nbytes = self._elem_bytes
            env = self.env
            queue = env._queue
            if queue and queue[0][0] == env.now:
                shell._run_callbacks = shell._move_begin
                env._sequence = sequence = env._sequence + 1
                heappush(queue, (env.now, sequence, shell))
            else:
                shell._move_begin()
        else:
            FastDmaCommand(
                self.env,
                mfc,
                DmaDirection.GET if tag == 0 else DmaDirection.PUT,
                self._target,
                self.partner_node,
                self._elem_bytes,
                tag,
            )
        self._after_issue()

    def _issue_list(self, tag: int, after) -> None:
        if self._chunk > self._limit:
            raise CellError(
                f"a DMA list holds at most {self._limit} elements, got {self._chunk}"
            )
        self._pend_tag = tag
        self._after_issue = after
        # Same tail-warp as _issue_elem (same all-tail call chains).
        env = self.env
        queue = env._queue
        target = env.now + self._list_issue_cycles
        if not queue or queue[0][0] > target:
            env.now = target
            self._list_built()
        else:
            self._run_callbacks = self._list_built
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (target, sequence, self))

    def _list_built(self) -> None:
        slots = self._fast_slots
        if slots.count < slots.capacity:
            slots.count += 1
            env = self.env
            queue = env._queue
            if queue and queue[0][0] == env.now:
                self._run_callbacks = self._list_slotted
                env._sequence = sequence = env._sequence + 1
                heappush(queue, (env.now, sequence, self))
            else:
                self._list_slotted()
        else:
            slots.queue.append(self)
            self._park(self._list_slotted)

    def _list_slotted(self) -> None:
        tag = self._pend_tag
        mfc = self.mfc
        mfc._tag_enqueued[tag] += 1
        mfc._total_enqueued += 1
        mfc._outstanding[tag] += 1
        FastDmaList(
            self.env,
            mfc,
            DmaDirection.GET if tag == 0 else DmaDirection.PUT,
            self._target,
            self.partner_node,
            self._elem_bytes,
            self._chunk,
            tag,
        )
        self._after_issue()

    # -- tag sync (SpuRuntime.wait_tags, no timeout) -----------------------------

    def _wait_tags(self, after) -> None:
        self._after_sync = after
        # Same tail-warp as _issue_elem (same all-tail call chains).
        env = self.env
        queue = env._queue
        target = env.now + self._sync_cycles
        if not queue or queue[0][0] > target:
            env.now = target
            self._sync_ready()
        else:
            self._run_callbacks = self._sync_ready
            env._sequence = sequence = env._sequence + 1
            heappush(queue, (target, sequence, self))

    def _sync_ready(self) -> None:
        # Mfc.fast_tags_quiet, inlined; this kernel's tags are always
        # registered groups, so the unknown-tag guard cannot fire.
        mfc = self.mfc
        outstanding = mfc._outstanding
        for tag in self._tags:
            if outstanding[tag]:
                mfc._tag_waiters.append((self, self._tags))
                self._park(self._sync_quiet)
                return
        self._hop(self._sync_quiet)

    def _sync_quiet(self) -> None:
        self._after_sync()

    # -- the program -------------------------------------------------------------

    def _start(self) -> None:
        self._warm_i = 0
        self._warm_next()

    def _warm_next(self) -> None:
        if self._warm_i < len(self._tags):
            tag = self._tags[self._warm_i]
            self._warm_i += 1
            self._issue_elem(tag, self._warm_next)
        else:
            self._wait_tags(self._warmed)

    def _warmed(self) -> None:
        self._t_start = self.env.now
        self._issued = 0
        self._since_sync = 0
        if self.workload.mode == "elem":
            self._elem_next()
        else:
            batch = self._sync_every or self._limit
            self._batch = batch if batch < self._limit else self._limit
            self._list_next()

    def _elem_next(self) -> None:
        if self._issued >= self._n:
            self._wait_tags(self._done)
            return
        if self._direction != "put":
            self._issue_elem(0, self._elem_mid)
        else:
            self._elem_mid()

    def _elem_mid(self) -> None:
        if self._direction != "get":
            self._issue_elem(1, self._elem_tail)
        else:
            self._elem_tail()

    def _elem_tail(self) -> None:
        self._issued += 1
        self._since_sync += 1
        if self._ff_anchor:
            env = self.env
            if env._ff_on:
                # Ask the run loop to try a steady-state fingerprint
                # between pops (never inside this callback — the heap
                # must be consistent when it is captured).
                env._ff_pending = True
        if self._sync_every is not None and self._since_sync >= self._sync_every:
            self._since_sync = 0
            self._wait_tags(self._elem_next)
        else:
            self._elem_next()

    def _list_next(self) -> None:
        if self._issued >= self._n:
            self._wait_tags(self._done)
            return
        remaining = self._n - self._issued
        self._chunk = self._batch if self._batch < remaining else remaining
        if self._direction != "put":
            self._issue_list(0, self._list_mid)
        else:
            self._list_mid()

    def _list_mid(self) -> None:
        if self._direction != "get":
            self._issue_list(1, self._list_tail)
        else:
            self._list_tail()

    def _list_tail(self) -> None:
        self._issued += self._chunk
        if self._ff_anchor:
            env = self.env
            if env._ff_on:
                env._ff_pending = True
        if self._sync_every is not None:
            self._wait_tags(self._list_next)
        else:
            self._list_next()

    def _done(self) -> None:
        end = self.env.now
        out = self.out
        out["start"] = self._t_start
        out["end"] = end
        out["cycles"] = end - self._t_start
        out["bytes"] = self.workload.total_bytes
        self.finished = True
