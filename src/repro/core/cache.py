"""Persistent, content-addressed, self-healing cache of repetition results.

A repetition (one :class:`~repro.core.experiment.RunSpec`) is a pure
function of its inputs, so its :class:`~repro.core.results.BandwidthSample`
can be reused across ``reproduce`` invocations.  The cache key is the
SHA-256 of a canonical JSON rendering of

* the complete :class:`~repro.cell.config.CellConfig` (every
  architectural and calibration knob),
* the kernel spec: each active SPE's :class:`~repro.core.kernels.DmaWorkload`
  plus the ``unrolled`` flag,
* the placement seed,
* the **code version**: a digest over every ``.py`` file of the
  ``repro`` package.

(:func:`spec_key` builds the key; :class:`~repro.runtime.journal.SweepJournal`
shares it, so a journal entry and a cache entry for the same repetition
always agree.)

Invalidation is purely by key: editing any model source changes the
code version, so every old entry simply stops matching — stale files
are never read, only orphaned (delete the cache directory, or set a
size cap, to reclaim the space).

The store heals itself instead of failing the sweep around it:

* corrupted, truncated or mistyped entries read as misses **and** are
  quarantined (moved to ``<root>/quarantine/``) so they are inspectable
  but never re-read; the ``corrupt`` counter records each one;
* an unwritable cache directory (read-only checkout, full filesystem)
  degrades :meth:`put` to a warn-once no-op — the sweep continues
  uncached rather than crashing mid-run;
* an optional size cap (``max_bytes``) evicts least-recently-used
  entries after each write (hits refresh an entry's mtime), with the
  ``evictions`` counter surfaced next to ``hits``/``misses`` in the
  ``reproduce`` summary.

Layout::

    .repro-cache/
      ab/abcdef...0123.json    # {"gbps": ..., "nbytes": ..., "cycles": ..., "seed": ...}
      quarantine/              # corrupt entries moved aside, never re-read

Writes go through a same-directory temp file and ``os.replace`` so a
crashed run never leaves a truncated entry behind, and concurrent
writers of the same key settle on one complete file.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import warnings

from repro.core.results import BandwidthSample

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the cache root where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"

_code_version: str | None = None


def repro_code_version() -> str:
    """Digest of every ``.py`` source of the installed ``repro`` package.

    Computed once per process; any edit anywhere in the model, kernels,
    runtime or experiment protocol yields a new version and therefore a
    cold cache — the conservative choice, since the cache cannot know
    which module feeds which number.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()
    return _code_version


def spec_key(spec, code_version: str) -> str:
    """Content address of one repetition under one code version.

    Shared by :class:`ResultCache` and
    :class:`~repro.runtime.journal.SweepJournal`, so the two stores
    address the same repetition identically.
    """
    payload = {"code": code_version, **spec.canonical()}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def decode_sample(payload) -> BandwidthSample | None:
    """A sample from a JSON payload, or None if the entry is mistyped.

    JSON round-trips ``1.0`` and ``"1.0"`` and ``null`` equally
    happily, and :class:`BandwidthSample`'s own validation only
    checks *ranges* — a string ``gbps`` would sail through comparisons
    into :class:`~repro.core.results.BandwidthStats` and poison the
    reduction.  Exact ``type()`` checks (not ``isinstance``) also
    reject booleans, which Python would otherwise accept as ints.
    """
    if type(payload) is not dict:
        return None
    gbps = payload.get("gbps")
    nbytes = payload.get("nbytes")
    cycles = payload.get("cycles")
    seed = payload.get("seed")
    if type(gbps) not in (int, float):
        return None
    if type(nbytes) is not int or type(cycles) is not int or type(seed) is not int:
        return None
    try:
        return BandwidthSample(gbps=gbps, nbytes=nbytes, cycles=cycles, seed=seed)
    except ValueError:
        # Right types, impossible values (zero bytes, negative cycles):
        # still a corrupt entry, never a crash.
        return None


def encode_sample(sample: BandwidthSample) -> dict:
    """The JSON payload of one sample (the inverse of :func:`decode_sample`)."""
    return {
        "gbps": sample.gbps,
        "nbytes": sample.nbytes,
        "cycles": sample.cycles,
        "seed": sample.seed,
    }


class ResultCache:
    """JSON-file cache of repetition samples under ``root``.

    ``code_version`` defaults to :func:`repro_code_version`; tests pin
    it to exercise invalidation without editing sources.  ``max_bytes``
    (None = unbounded, the default) caps the total size of live
    entries; exceeding it after a write evicts least-recently-used
    entries until the cap holds again.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 code_version: str | None = None,
                 max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = root
        self.code_version = (
            repro_code_version() if code_version is None else code_version
        )
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.put_errors = 0
        self._writable = True
        self._size_bytes: int | None = None

    def key(self, spec) -> str:
        """Content address of one repetition."""
        return spec_key(spec, self.code_version)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # Kept as a staticmethod alias: tests and the journal share the
    # decoding rules through the module-level functions.
    _decode = staticmethod(decode_sample)

    def get(self, spec, key: str | None = None) -> BandwidthSample | None:
        """The cached sample for a spec, or None (a miss).

        ``key`` lets a caller that already computed :meth:`key` (to pair
        this lookup with a later :meth:`put`) skip recomputing it.
        Corrupt or mistyped entries are quarantined, never raised.
        """
        if key is None:
            key = self.key(spec)
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            # Missing entry (the common cold-cache case) or an
            # unreadable directory: a plain miss.
            self.misses += 1
            return None
        except ValueError:
            # Truncated or bit-flipped JSON: quarantine and re-simulate.
            self._quarantine(path)
            self.misses += 1
            return None
        sample = decode_sample(payload)
        if sample is None:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        if self.max_bytes is not None:
            # Touch for LRU: a hit keeps the entry young under eviction.
            with contextlib.suppress(OSError):
                os.utime(path)
        return sample

    def put(self, spec, sample: BandwidthSample, key: str | None = None) -> None:
        """Store a freshly simulated sample (atomic, last writer wins).

        Never raises on an unwritable filesystem: the first ``OSError``
        warns once and downgrades every later put to a no-op, so a
        read-only checkout or a full disk costs cache reuse, not the
        sweep.
        """
        if not self._writable:
            self.put_errors += 1
            return
        if key is None:
            key = self.key(spec)
        path = self._path(key)
        handle = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", dir=os.path.dirname(path), suffix=".tmp", delete=False
            )
            with handle:
                json.dump(encode_sample(sample), handle)
            os.replace(handle.name, path)
        except OSError as error:
            self.put_errors += 1
            self._writable = False
            if handle is not None:
                with contextlib.suppress(OSError):
                    os.unlink(handle.name)
            warnings.warn(
                f"result cache {self.root!r} is not writable ({error}); "
                "continuing uncached",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        except BaseException:
            if handle is not None:
                with contextlib.suppress(OSError):
                    os.unlink(handle.name)
            raise
        if self.max_bytes is not None:
            self._account(path)

    # -- self-healing internals ------------------------------------------------

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so it is never re-read (best
        effort: on an unwritable filesystem the entry keeps reading as a
        miss, which is still correct, just slower)."""
        self.corrupt += 1
        dest_dir = os.path.join(self.root, QUARANTINE_DIR)
        try:
            os.makedirs(dest_dir, exist_ok=True)
            os.replace(path, os.path.join(dest_dir, os.path.basename(path)))
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(path)

    def _entries(self) -> list[tuple[float, int, str]]:
        """Live entries as (mtime, size, path), quarantine excluded."""
        entries = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            if QUARANTINE_DIR in dirnames:
                dirnames.remove(QUARANTINE_DIR)
            for filename in filenames:
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                entries.append((status.st_mtime, status.st_size, path))
        return entries

    def _account(self, path: str) -> None:
        """Fold one fresh write into the running size; evict if over cap."""
        if self._size_bytes is None:
            self._size_bytes = sum(size for _, size, _ in self._entries())
        else:
            with contextlib.suppress(OSError):
                self._size_bytes += os.stat(path).st_size
        if self._size_bytes > self.max_bytes:
            self._evict()

    def _evict(self) -> None:
        """Delete least-recently-used entries until the cap holds."""
        entries = self._entries()
        self._size_bytes = sum(size for _, size, _ in entries)
        entries.sort()  # oldest mtime first
        for _mtime, size, path in entries:
            if self._size_bytes <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            self._size_bytes -= size
            self.evictions += 1

    def describe(self) -> str:
        """One-line health summary for the ``reproduce`` footer.

        Matches the historical ``N hit(s) / M miss(es)`` exactly when no
        self-healing event fired, so default-run summaries are unchanged.
        """
        text = f"{self.hits} hit(s) / {self.misses} miss(es)"
        if self.evictions:
            text += f", {self.evictions} evicted"
        if self.corrupt:
            text += f", {self.corrupt} quarantined"
        if self.put_errors:
            text += f", {self.put_errors} write error(s)"
        return text
