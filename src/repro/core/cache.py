"""Persistent, content-addressed cache of repetition results.

A repetition (one :class:`~repro.core.experiment.RunSpec`) is a pure
function of its inputs, so its :class:`~repro.core.results.BandwidthSample`
can be reused across ``reproduce`` invocations.  The cache key is the
SHA-256 of a canonical JSON rendering of

* the complete :class:`~repro.cell.config.CellConfig` (every
  architectural and calibration knob),
* the kernel spec: each active SPE's :class:`~repro.core.kernels.DmaWorkload`
  plus the ``unrolled`` flag,
* the placement seed,
* the **code version**: a digest over every ``.py`` file of the
  ``repro`` package.

Invalidation is purely by key: editing any model source changes the
code version, so every old entry simply stops matching — stale files
are never read, only orphaned (delete the cache directory to reclaim
the space).  Corrupt or half-written entries read as misses.

Layout::

    .repro-cache/
      ab/abcdef...0123.json    # {"gbps": ..., "nbytes": ..., "cycles": ..., "seed": ...}

Writes go through a same-directory temp file and ``os.replace`` so a
crashed run never leaves a truncated entry behind, and concurrent
writers of the same key settle on one complete file.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile

from repro.core.results import BandwidthSample

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version: str | None = None


def repro_code_version() -> str:
    """Digest of every ``.py`` source of the installed ``repro`` package.

    Computed once per process; any edit anywhere in the model, kernels,
    runtime or experiment protocol yields a new version and therefore a
    cold cache — the conservative choice, since the cache cannot know
    which module feeds which number.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version = digest.hexdigest()
    return _code_version


class ResultCache:
    """JSON-file cache of repetition samples under ``root``.

    ``code_version`` defaults to :func:`repro_code_version`; tests pin
    it to exercise invalidation without editing sources.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 code_version: str | None = None):
        self.root = root
        self.code_version = (
            repro_code_version() if code_version is None else code_version
        )
        self.hits = 0
        self.misses = 0

    def key(self, spec) -> str:
        """Content address of one repetition."""
        payload = {
            "code": self.code_version,
            "config": dataclasses.asdict(spec.config),
            "assignments": [
                [logical, dataclasses.asdict(workload)]
                for logical, workload in spec.assignments
            ],
            "seed": spec.seed,
            "unrolled": spec.unrolled,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    @staticmethod
    def _decode(payload) -> BandwidthSample | None:
        """A sample from a JSON payload, or None if the entry is mistyped.

        JSON round-trips ``1.0`` and ``"1.0"`` and ``null`` equally
        happily, and :class:`BandwidthSample`'s own validation only
        checks *ranges* — a string ``gbps`` would sail through comparisons
        into :class:`~repro.core.results.BandwidthStats` and poison the
        reduction.  Exact ``type()`` checks (not ``isinstance``) also
        reject booleans, which Python would otherwise accept as ints.
        """
        if type(payload) is not dict:
            return None
        gbps = payload.get("gbps")
        nbytes = payload.get("nbytes")
        cycles = payload.get("cycles")
        seed = payload.get("seed")
        if type(gbps) not in (int, float):
            return None
        if type(nbytes) is not int or type(cycles) is not int or type(seed) is not int:
            return None
        return BandwidthSample(gbps=gbps, nbytes=nbytes, cycles=cycles, seed=seed)

    def get(self, spec, key: str | None = None) -> BandwidthSample | None:
        """The cached sample for a spec, or None (a miss).

        ``key`` lets a caller that already computed :meth:`key` (to pair
        this lookup with a later :meth:`put`) skip recomputing it.
        """
        if key is None:
            key = self.key(spec)
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
            sample = self._decode(payload)
            if sample is None:
                raise ValueError(f"mistyped cache entry {key}")
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, corrupt, half-written or mistyped entries all
            # read as misses; put() will rewrite them whole.
            self.misses += 1
            return None
        self.hits += 1
        return sample

    def put(self, spec, sample: BandwidthSample, key: str | None = None) -> None:
        """Store a freshly simulated sample (atomic, last writer wins)."""
        if key is None:
            key = self.key(spec)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "gbps": sample.gbps,
            "nbytes": sample.nbytes,
            "cycles": sample.cycles,
            "seed": sample.seed,
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=os.path.dirname(path), suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
            raise
