#!/usr/bin/env python3
"""Generate the paper's section-5 programming guidelines from scratch.

Runs a compact version of the whole measurement suite, feeds the results
to the :class:`~repro.analysis.GuidelineAdvisor`, and prints each rule
with the measured numbers that justify it — the paper's conclusions as a
reproducible artefact rather than prose.

Run:  python examples/guideline_report.py        (~1 minute)
"""

from repro.analysis import GuidelineAdvisor
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairSyncExperiment,
    PpeBandwidthExperiment,
    SpeMemoryExperiment,
)

VOLUME = 2 ** 20


def main():
    advisor = GuidelineAdvisor()

    print("running PPE experiments (structural model)...")
    for level in ("l1", "l2"):
        advisor.add_ppe(level, PpeBandwidthExperiment(level).run())

    print("running SPE<->memory sweep...")
    advisor.add_memory(
        SpeMemoryExperiment(
            element_sizes=(16384,),
            directions=("get",),
            repetitions=2,
            bytes_per_spe=VOLUME,
        ).run()
    )

    print("running sync-delay sweep...")
    advisor.add_pair_sync(
        PairSyncExperiment(
            sync_policies=(1, 2 ** 30),
            element_sizes=(4096,),
            repetitions=2,
            bytes_per_spe=VOLUME,
        ).run()
    )

    print("running couples and cycle (this is the slow part)...")
    advisor.add_couples(
        CouplesExperiment(
            element_sizes=(256, 16384), repetitions=4, bytes_per_spe=VOLUME
        ).run()
    )
    advisor.add_cycle(
        CycleExperiment(
            spe_counts=(8,),
            element_sizes=(16384,),
            repetitions=4,
            bytes_per_spe=VOLUME,
        ).run()
    )

    print("\n== programming guidelines, derived from measurement ==\n")
    for i, guideline in enumerate(advisor.guidelines(), start=1):
        print(f"{i}. {guideline.rule}")
        print(f"   evidence: {guideline.evidence} ({guideline.advantage:.1f}x)\n")


if __name__ == "__main__":
    main()
