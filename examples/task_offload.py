#!/usr/bin/env python3
"""A CellSs-style task runtime, tuned by the paper's measurements.

The paper's related work points at CellSs — tasks plus dependencies,
with a runtime doing the scheduling and DMA — and notes that "the
bandwidth results, and the programming guidelines that we provide in
this paper would be very useful in optimizing the runtime library used
in such programming model".  This example is that optimisation, shown
on a stencil wavefront:

* the *memory* policy (an untuned runtime) stages every value through
  main memory, the path that saturates with many SPEs (Figure 8);
* the *forward* policy applies the paper's guidelines: outputs stay in
  the producer's local store and move SPE-to-SPE (the near-peak path),
  and idle SPEs prefer tasks whose inputs they already hold.

Run:  python examples/task_offload.py
"""

from repro.runtime import OffloadRuntime, chain, fan_out_fan_in, wavefront


def compare(title, graph, n_spes):
    print(f"[{title}]  {len(graph)} tasks on {n_spes} SPEs")
    results = {}
    for policy in ("memory", "forward"):
        stats = OffloadRuntime(graph, n_spes=n_spes, policy=policy).run()
        results[policy] = stats
        print(
            f"  {policy:>7}: {stats.makespan_cycles:>9} cycles  "
            f"{stats.gflops:6.2f} GFLOP/s  "
            f"memory {stats.memory_traffic_bytes / 2 ** 20:5.1f} MiB  "
            f"forwarded {stats.forwarded_bytes / 2 ** 20:5.1f} MiB"
        )
    speedup = (
        results["memory"].makespan_cycles / results["forward"].makespan_cycles
    )
    print(f"  forwarding speedup: {speedup:.2f}x\n")


def main():
    compare("stencil wavefront 8x10", wavefront(width=8, steps=10), n_spes=8)
    compare("map-reduce, width 16", fan_out_fan_in(width=16), n_spes=8)
    compare("pure pipeline, 24 stages", chain(24), n_spes=8)
    print("the pipeline shows no gap: the locality-aware pick keeps the")
    print("whole chain on one SPE, consuming straight from its local store.")


if __name__ == "__main__":
    main()
