#!/usr/bin/env python3
"""The paper's future work, executed: small kernels on the Cell model.

Section 5: "we plan to use this experience to evaluate small kernels
(scalar product, matrix by vector, matrix product, streaming
benchmarks...)".  This example runs those kernels as real double-
buffered SPU programs on the simulated chip and checks them against a
roofline built from the paper's own bandwidth measurements:

* the scalar product and STREAM triad are hopelessly bandwidth-bound —
  they inherit the ~20 GB/s multi-SPE memory ceiling of Figure 8, not
  the 25.6 GB/s datasheet number;
* matrix-vector doubles the dot product's intensity and its GFLOP/s;
* blocked matrix multiply escapes the bandwidth roof entirely and runs
  at ~99% of the 16.8 GFLOP/s-per-SPE single-precision peak;
* the same matmul in double precision collapses by ~14x ("only one
  double precision operation every 7 cycles") — the reason for
  Dongarra's mixed-precision proposal the paper cites.

Run:  python examples/kernels_roofline.py
"""

from repro.kernels import (
    Precision,
    RooflineModel,
    dot_product,
    matrix_multiply,
    matrix_vector,
    stream_triad,
)


def main():
    roofline = RooflineModel()
    n_spes = 4

    print(f"rooflines for {n_spes} SPEs:")
    print(f"  compute (SP): {roofline.compute_roof(Precision.SINGLE, n_spes):6.1f} GFLOP/s")
    print(f"  compute (DP): {roofline.compute_roof(Precision.DOUBLE, n_spes):6.1f} GFLOP/s")
    print(f"  memory:       {roofline.bandwidth_roof(n_spes):6.1f} GB/s (measured, Fig. 8)")
    print(
        f"  ridge point:  {roofline.ridge_intensity(Precision.SINGLE, n_spes):6.2f} "
        "FLOP/B (SP)\n"
    )

    kernels = [
        dot_product(),
        stream_triad(),
        matrix_vector(),
        matrix_multiply(block=16),
        matrix_multiply(block=64),
        matrix_multiply(block=64, precision=Precision.DOUBLE),
    ]
    points = [roofline.verify(spec, n_spes, iterations_per_spe=48) for spec in kernels]
    print(RooflineModel.format(points))

    print("\nvectorisation/precision lesson (1 SPE, blocked matmul):")
    sp = roofline.verify(matrix_multiply(block=64), 1, iterations_per_spe=24)
    dp = roofline.verify(
        matrix_multiply(block=64, precision=Precision.DOUBLE), 1, iterations_per_spe=24
    )
    ratio = sp.measured.gflops / dp.measured.gflops
    print(
        f"  SP {sp.measured.gflops:.1f} GFLOP/s vs DP {dp.measured.gflops:.1f} "
        f"GFLOP/s: {ratio:.1f}x — do the bulk in single precision."
    )


if __name__ == "__main__":
    main()
