#!/usr/bin/env python3
"""Record a chip trace, summarise it, and export it for Perfetto.

Attach a :class:`~repro.sim.TraceRecorder` to a chip, run a mixed
workload (four memory streams saturating the XDR banks, two LS-to-LS
couples contending on the rings), then:

1. recompute the EIB counters from the trace stream and check them
   against the live counters — they must match exactly;
2. print the per-ring / per-flow / per-bank breakdown and the
   saturation claims the trace supports;
3. write ``trace-demo.json``, loadable in https://ui.perfetto.dev or
   ``chrome://tracing``.

The same pipeline is wired into the reproduction driver
(``python -m repro.reproduce --quick --trace out.json``) and the
standalone reader (``python -m repro.trace_report out.json``).

Run:  python examples/trace_demo.py
"""

from repro import CellChip
from repro.cell import SpeMapping
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext
from repro.sim import TraceRecorder, TraceSummary, write_chrome_trace
from repro.trace_report import render_report

OUT = "trace-demo.json"


def main():
    recorder = TraceRecorder()
    chip = CellChip(mapping=SpeMapping.random(42, 8), trace=recorder)

    for logical in range(4):
        workload = DmaWorkload(
            direction="get", element_bytes=16384, n_elements=64
        )
        SpeContext(chip, logical).load(dma_stream_kernel, workload, {}, None)
    for a, b in ((4, 5), (6, 7)):
        workload = DmaWorkload(
            direction="copy",
            element_bytes=16384,
            n_elements=64,
            partner_logical=b,
        )
        SpeContext(chip, a).load(dma_stream_kernel, workload, {}, chip.spe(b))

    chip.run()

    summary = TraceSummary(recorder.records)
    live = {
        "grants": chip.eib.grants,
        "conflicts": chip.eib.conflicts,
        "wait_cycles": chip.eib.wait_cycles,
        "bytes_moved": chip.eib.bytes_moved,
    }
    print(f"{len(recorder.records)} records over {summary.duration} cycles "
          f"({recorder.dropped} dropped)")
    print()
    print(render_report(summary, chip.config.clock.cpu_hz, live))

    assert summary.counters() == live, "trace stream must reproduce counters"

    write_chrome_trace(
        OUT,
        recorder.records,
        cpu_hz=chip.config.clock.cpu_hz,
        metadata={"counters": live},
    )
    print()
    print(f"wrote {OUT} — open it in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
