#!/usr/bin/env python3
"""Quickstart: measure SPE-to-SPE DMA bandwidth on a modelled Cell BE.

This is the smallest complete use of the library: build a chip, write an
SPU program against the libspe-shaped API, run it, and convert decrementer
cycles into GB/s.  It reproduces the paper's single-pair headline: one SPE
doing simultaneous GET and PUT against a partner's local store sustains
almost the full 33.6 GB/s read+write peak — provided the code follows the
paper's rules (unrolled issue, synchronisation delayed to the very end).

Run:  python examples/quickstart.py
"""

from repro import CellChip, SpeContext


def spu_main(spu, partner, out, element_bytes=16384, n_elements=256):
    """The SPU program: stream GET+PUT against the partner's local store.

    GET commands join tag group 0 and PUT commands tag group 1; the
    single wait at the end is the paper's 'delay synchronisation as much
    as possible' rule.  GETs land in the lower half of the local store
    and PUTs stage from the upper half, each direction rotating through
    as many element-sized buffers as its half holds, so in-flight
    transfers never touch the same bytes (run under
    ``reproduce --sanitize`` to have the model check that claim).
    """
    half = spu.spe.local_store.size // 2
    nbuf = max(1, half // element_bytes)
    start = spu.read_decrementer()
    for i in range(n_elements):
        get_offset = (i % nbuf) * element_bytes
        put_offset = half + get_offset
        yield from spu.mfc_get(size=element_bytes, tag=0, remote_spe=partner,
                               local_offset=get_offset, remote_offset=get_offset)
        yield from spu.mfc_put(size=element_bytes, tag=1, remote_spe=partner,
                               local_offset=put_offset, remote_offset=put_offset)
    yield from spu.wait_tags([0, 1])
    out["cycles"] = spu.read_decrementer() - start
    out["bytes"] = 2 * element_bytes * n_elements


def main():
    chip = CellChip()  # the paper's blade: 2.1 GHz, 8 SPEs, 4-ring EIB

    out = {}
    context = SpeContext(chip, logical_index=0)
    context.load(spu_main, chip.spe(1), out)
    chip.run()

    gbps = chip.config.clock.gbps(out["bytes"], out["cycles"])
    peak = chip.config.pair_peak_gbps
    print(f"moved {out['bytes'] / 2 ** 20:.0f} MiB in {out['cycles']} CPU cycles")
    print(f"SPE0 <-> SPE1 GET+PUT: {gbps:.2f} GB/s "
          f"({100 * gbps / peak:.0f}% of the {peak:.1f} GB/s peak)")
    print()
    print("EIB ring utilisation during the run:")
    for ring, utilisation in sorted(chip.eib.utilization().items()):
        print(f"  {ring}: {100 * utilisation:.0f}%")


if __name__ == "__main__":
    main()
