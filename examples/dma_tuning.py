#!/usr/bin/env python3
"""DMA tuning walkthrough: the paper's programming rules, one by one.

Starting from a naive SPE-to-SPE copy loop, apply each rule the paper
derives and watch the bandwidth respond:

1. naive: rolled loop, 256 B elements, wait after every DMA;
2. + unroll the loop (cheaper command issue, fewer branches);
3. + delay synchronisation to the end (saturate the MFC queue);
4. + use DMA lists (flat bandwidth even for small elements);
5. + use >= 1 KiB elements (port-bound, almost peak).

Run:  python examples/dma_tuning.py
"""

from repro import CellChip
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext


def measure(workload, unrolled):
    chip = CellChip()
    out = {}
    context = SpeContext(chip, 0, unrolled=unrolled)
    context.load(dma_stream_kernel, workload, out, chip.spe(1))
    chip.run()
    return chip.config.clock.gbps(out["bytes"], out["cycles"])


def main():
    peak = CellChip().config.pair_peak_gbps
    n_for = lambda element: max(64, 2 ** 20 // element)

    steps = [
        (
            "naive: rolled loop, 256 B, sync every DMA",
            DmaWorkload("copy", 256, n_for(256), mode="elem", sync_every=1,
                        partner_logical=1),
            False,
        ),
        (
            "+ unrolled loop",
            DmaWorkload("copy", 256, n_for(256), mode="elem", sync_every=1,
                        partner_logical=1),
            True,
        ),
        (
            "+ delayed synchronisation",
            DmaWorkload("copy", 256, n_for(256), mode="elem", partner_logical=1),
            True,
        ),
        (
            "+ DMA lists",
            DmaWorkload("copy", 256, n_for(256), mode="list", partner_logical=1),
            True,
        ),
        (
            "+ 4 KiB elements (DMA-elem works again)",
            DmaWorkload("copy", 4096, n_for(4096), mode="elem", partner_logical=1),
            True,
        ),
    ]

    print(f"SPE0 <-> SPE1 GET+PUT, peak {peak:.1f} GB/s\n")
    baseline = None
    for label, workload, unrolled in steps:
        gbps = measure(workload, unrolled)
        baseline = baseline or gbps
        print(
            f"{label:<45} {gbps:6.2f} GB/s "
            f"({100 * gbps / peak:3.0f}% of peak, {gbps / baseline:4.1f}x naive)"
        )


if __name__ == "__main__":
    main()
