#!/usr/bin/env python3
"""The placement lottery: why the paper reports min/max/median/mean.

libspe 1.1 gives the programmer no control over — or even visibility
into — which physical SPE a logical SPE lands on, and the physical ring
position decides which transfers collide on EIB segments.  This example
runs the 8-SPE couples workload (four GET+PUT pairs) under twenty
different placements and prints the distribution, then inspects the best
and worst mapping to show *where* the bandwidth went.

Run:  python examples/placement_lottery.py
"""

import statistics

from repro import CellChip, SpeMapping
from repro.core.kernels import DmaWorkload, dma_stream_kernel
from repro.libspe import SpeContext


def run_couples(seed, element_bytes=16384, n_elements=96):
    chip = CellChip(mapping=SpeMapping.random(seed))
    outs = []
    for initiator in range(0, 8, 2):
        workload = DmaWorkload(
            "copy", element_bytes, n_elements, partner_logical=initiator + 1
        )
        out = {}
        SpeContext(chip, initiator).load(
            dma_stream_kernel, workload, out, chip.spe(initiator + 1)
        )
        outs.append(out)
    chip.run()
    total = sum(out["bytes"] for out in outs)
    elapsed = max(out["end"] for out in outs) - min(out["start"] for out in outs)
    return chip, chip.config.clock.gbps(total, elapsed)


def main():
    seeds = range(20)
    runs = {seed: run_couples(seed) for seed in seeds}
    values = {seed: gbps for seed, (_chip, gbps) in runs.items()}
    peak = 4 * 33.6

    print(f"couples of 8 SPEs, 20 random placements, peak {peak:.1f} GB/s")
    print(f"  min    {min(values.values()):7.1f} GB/s")
    print(f"  median {statistics.median(values.values()):7.1f} GB/s")
    print(f"  mean   {statistics.fmean(values.values()):7.1f} GB/s")
    print(f"  max    {max(values.values()):7.1f} GB/s")
    print()

    best = max(values, key=values.get)
    worst = min(values, key=values.get)
    for label, seed in (("best", best), ("worst", worst)):
        chip, gbps = runs[seed]
        print(f"{label} placement (seed {seed}): {gbps:.1f} GB/s")
        pairs = ", ".join(
            f"{chip.spe(i).node}<->{chip.spe(i + 1).node}" for i in range(0, 8, 2)
        )
        print(f"  pairs: {pairs}")
        print(
            f"  grants that had to wait: {100 * chip.eib.conflict_fraction:.0f}%"
            f"  (wait cycles: {chip.eib.wait_cycles})"
        )
    print()
    print("The paper's conclusion: the libspe affinity API should let the")
    print("programmer pick the layout — until then, measure across runs.")


if __name__ == "__main__":
    main()
