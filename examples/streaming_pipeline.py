#!/usr/bin/env python3
"""The paper's headline guideline, demonstrated on a real workload shape.

"Implementing two data streams using 4 SPEs each can be more efficient
than having a single data stream using the 8 SPEs."

A data stream here is the streaming programming model's pipeline: the
head SPE pulls chunks from main memory, each chunk then hops local-store
to local-store through the downstream SPEs (each applying its compute
stage), and the tail writes results back to memory.  Flow control runs
over the SPE mailboxes (READY tokens downstream, ACK tokens upstream)
with double buffering — the same machinery a real Cell streaming
framework (e.g. CellSs' runtime) needs.

The comparison: one 8-deep pipeline has a single SPE's worth of memory
input bandwidth (~10 GB/s, 60% of the MIC bank); two concurrent 4-deep
pipelines have two, and the memory system genuinely delivers it.

Run:  python examples/streaming_pipeline.py
"""

from repro.analysis import StreamingComparison


def main():
    print("same data volume, same chunk size, two ways to use 8 SPEs\n")
    for compute_cycles, label in ((0, "pure data movement"),
                                  (8000, "with per-chunk compute")):
        comparison = StreamingComparison(
            chunk_bytes=16384,
            chunks_per_stream_unit=48,
            compute_cycles=compute_cycles,
        )
        results = comparison.run()
        single, double = results["single"], results["double"]
        print(f"[{label}]")
        for result in (single, double):
            seconds = result.cycles / comparison.config.clock.cpu_hz
            print(
                f"  {result.label:<20} {result.gbps:6.2f} GB/s "
                f"({result.total_bytes / 2 ** 20:.0f} MiB in {seconds * 1e3:.2f} ms)"
            )
        print(f"  advantage of two streams: {double.gbps / single.gbps:.2f}x\n")


if __name__ == "__main__":
    main()
