#!/usr/bin/env python3
"""The affinity API the paper asks for, demonstrated.

The paper closes with: "The physical layout of the SPEs has a critical
impact on performance.  However the current API does not allow the
programmer to select such layout ... This should be improved in the
libspe library."  This example *is* that improvement, on the model:
describe the communication pattern, let the planner search the 8! ways
of placing logical SPEs on the physical ring, and verify the plan on
the simulator against the random placements the OS would give you.

Run:  python examples/affinity_planner.py
"""

import statistics

from repro.analysis.affinity import (
    CommunicationPattern,
    mapping_cost,
    measure_mapping,
    plan_mapping,
)
from repro.cell import SpeMapping


def study(name, pattern, peak):
    best = plan_mapping(pattern, objective="best")
    worst = plan_mapping(pattern, objective="worst")
    planned = measure_mapping(pattern, best)
    adversarial = measure_mapping(pattern, worst)
    lottery = [
        measure_mapping(pattern, SpeMapping.random(seed)) for seed in range(8)
    ]
    print(f"[{name}]  peak {peak:.1f} GB/s")
    print(f"  planned placement     {planned:7.1f} GB/s "
          f"({100 * planned / peak:.0f}% of peak, cost {mapping_cost(pattern, best):.0f})")
    print(f"  OS lottery (8 seeds)  {statistics.fmean(lottery):7.1f} GB/s mean "
          f"[{min(lottery):.1f} .. {max(lottery):.1f}]")
    print(f"  adversarial placement {adversarial:7.1f} GB/s "
          f"(cost {mapping_cost(pattern, worst):.0f})")
    print(f"  planning gain over the lottery: "
          f"{planned / statistics.fmean(lottery):.2f}x\n")


def main():
    print("searching all 40320 placements per pattern...\n")
    study("couples: 4 GET+PUT pairs", CommunicationPattern.couples(8), 134.4)
    study("cycle: 8-SPE streaming ring", CommunicationPattern.cycle(8), 134.4)


if __name__ == "__main__":
    main()
