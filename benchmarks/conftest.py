"""Shared benchmark knobs and fixtures.

Every benchmark regenerates one of the paper's figures: it runs the
corresponding experiment once inside ``benchmark.pedantic`` (simulations
are deterministic; repeated timing rounds would only re-measure the
host), prints the figure's rows, and asserts the figure's headline
anchors so a silent regression fails loudly.

Run:  pytest benchmarks/ --benchmark-only -s
Add --paper-scale for the complete 128 B-16 KiB sweep at 10 repetitions.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the full 128 B-16 KiB sweep with 10 repetitions "
        "(slow; matches the paper's protocol exactly)",
    )


@pytest.fixture
def bench_params(request):
    """Sweep parameters: a representative subset by default, the paper's
    full protocol under --paper-scale.  Volume-invariance of sustained
    bandwidth (asserted by tests/test_core_experiments.py) justifies the
    reduced per-SPE volume."""
    if request.config.getoption("--paper-scale"):
        return {
            "element_sizes": (128, 256, 512, 1024, 2048, 4096, 8192, 16384),
            "repetitions": 10,
            "bytes_per_spe": 2 ** 21,
        }
    return {
        "element_sizes": (128, 512, 1024, 4096, 16384),
        "repetitions": 6,
        "bytes_per_spe": 2 ** 20,
    }


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under the timer."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
