"""DES-kernel throughput microbenchmark: events/second, serial vs pool.

The primary workload is a standard "DMA storm": all 8 SPEs stream
GET+PUT against main memory (the figure-8 shape that saturates the
banks), one fresh machine per repetition with seeded random placements
— exactly what every sweep in this repository fans out.  A secondary
single-SPE "DMA stream" shape exercises the steady-state fast-forward,
which the storm's chaotic contention never triggers.  The benchmark

* counts each workload's events once via the engines' own accounting
  (``events_modeled`` is what the reference DES processes;
  ``events_popped`` is what each engine actually pops — the fast
  engine coalesces provably-inert heap slots and warps over periodic
  steady state, so its count is lower for the same byte-identical
  result),
* times the repetitions serially (``jobs=1``, the in-process path) and
  through the :class:`~repro.runtime.parallel.SweepExecutor` pool,
  computing ``events_per_sec`` from ``events_modeled`` for every row
  so throughput is comparable across engines,
* writes ``BENCH_simkernel.json`` so the kernel's performance
  trajectory is tracked across PRs.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_simkernel.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_simkernel.py --runs 16 --out /tmp/bench.json

or as a pytest smoke (reduced size)::

    pytest benchmarks/bench_simkernel.py -q -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

from repro.cell.config import CellConfig
from repro.core.experiment import RunSpec, run_spec_report
from repro.core.kernels import DmaWorkload
from repro.runtime.parallel import SweepExecutor, default_jobs

#: Placement seed of the first repetition (matches the experiments).
SEED_BASE = 1000

#: The storm: every SPE copies 4 KiB elements against main memory.
STORM_ELEMENT_BYTES = 4096


def storm_spec(seed: int, n_elements: int) -> RunSpec:
    """One repetition of the DMA storm as a picklable spec."""
    workload = DmaWorkload(
        direction="copy",
        element_bytes=STORM_ELEMENT_BYTES,
        n_elements=n_elements,
    )
    config = CellConfig.paper_blade()
    return RunSpec(
        config=config,
        seed=seed,
        assignments=tuple((logical, workload) for logical in range(config.n_spes)),
    )


def stream_spec(seed: int, n_elements: int) -> RunSpec:
    """One repetition of the single-SPE DMA stream (the periodic shape
    the steady-state fast-forward detects and warps over)."""
    workload = DmaWorkload(
        direction="get",
        element_bytes=STORM_ELEMENT_BYTES,
        n_elements=n_elements,
    )
    return RunSpec(
        config=CellConfig.paper_blade(),
        seed=seed,
        assignments=((0, workload),),
    )


def count_events(spec: RunSpec, engine: str = "reference") -> dict:
    """Event accounting of one repetition, from the engine itself.

    Deterministic: every repetition of the same spec drains the same
    counts, so the timed runs below can use the uninstrumented loop.
    ``events_modeled`` is ``events_popped + events_elided`` — on the
    reference engine the elided term is zero, so its modeled count is
    the ground-truth DES event total.
    """
    report = run_spec_report(spec, engine=engine)
    return {
        "events_popped": report.events_popped,
        "events_elided": report.events_elided,
        "events_modeled": report.events_modeled,
        "windows_warped": report.windows_warped,
        "cycles_warped": report.cycles_warped,
    }


def measure(
    jobs: int,
    specs: list[RunSpec],
    events_modeled: int,
    engine: str = "reference",
    surrogate=None,
) -> tuple[dict, list]:
    """Wall-clock one pass over ``specs`` at a worker count; returns the
    timing row and the samples (so callers can assert engine identity).
    ``events_modeled`` is the per-run reference event count: every
    row's ``events_per_sec`` is modeled-events over wall seconds, which
    is what makes the rate comparable across engines.  With
    ``surrogate`` attached, in-domain repetitions are answered by the
    fitted model instead of the DES (the ``served`` count says how
    many were)."""
    with SweepExecutor(jobs=jobs, cache=None, engine=engine) as executor:
        executor.surrogate = surrogate
        if jobs > 1:
            executor._ensure_pool()  # exclude pool start-up from the timing
        begin = perf_counter()
        samples = executor.samples(specs)
        elapsed = perf_counter() - begin
        served = executor.surrogate_hits
        popped = executor.events_popped
        elided = executor.events_elided
    assert len(samples) == len(specs)
    total_modeled = events_modeled * len(specs)
    row = {
        "jobs": jobs,
        "engine": engine,
        "runs": len(specs),
        "seconds": elapsed,
        "events_modeled": total_modeled,
        "events_popped": popped,
        "events_per_sec": total_modeled / elapsed,
    }
    if elided:
        row["events_elided"] = elided
    if surrogate is not None:
        row["served"] = served
    return row, samples


def measure_fastforward(runs: int, n_elements: int) -> dict:
    """The fast-forward showcase row: the periodic single-SPE stream,
    reference vs fast, with the warp statistics and hit rate."""
    specs = [stream_spec(SEED_BASE + i, n_elements) for i in range(runs)]
    counts = count_events(specs[0])
    counts_fast = count_events(specs[0], engine="fast")
    reference, reference_samples = measure(1, specs, counts["events_modeled"])
    fast, fast_samples = measure(
        1, specs, counts["events_modeled"], engine="fast"
    )
    assert fast_samples == reference_samples, (
        "fast engine diverged from reference on the stream shape"
    )
    popped = counts_fast["events_popped"]
    elided = counts_fast["events_elided"]
    return {
        "shape": "dma-stream",
        "n_spes": 1,
        "element_bytes": STORM_ELEMENT_BYTES,
        "n_elements": n_elements,
        "events_modeled": counts["events_modeled"],
        "events_popped_fast": popped,
        "windows_warped": counts_fast["windows_warped"],
        "cycles_warped": counts_fast["cycles_warped"],
        "events_elided": elided,
        "ff_hit_rate": elided / (elided + popped),
        "reference": reference,
        "fast": fast,
        "speedup": reference["seconds"] / fast["seconds"],
    }


def run_benchmark(jobs: int, runs: int, n_elements: int, out: str) -> dict:
    specs = [storm_spec(SEED_BASE + i, n_elements) for i in range(runs)]
    counts = count_events(specs[0])
    counts_fast = count_events(specs[0], engine="fast")
    events_modeled = counts["events_modeled"]
    serial, serial_samples = measure(1, specs, events_modeled)
    fast, fast_samples = measure(1, specs, events_modeled, engine="fast")
    # The engines' contract, re-checked where the speedup is claimed.
    assert fast_samples == serial_samples, "fast engine diverged from reference"
    parallel = (
        measure(jobs, specs, events_modeled)[0] if jobs > 1 else None
    )
    # The analytic surrogate, fitted on the storm results just
    # simulated, answering the same sweep in O(1) per repetition.
    from repro.analysis.surrogate import SurrogateModel

    model = SurrogateModel.fit(specs, serial_samples, code_version="bench")
    surrogate, _ = measure(
        1, specs, events_modeled, engine="fast", surrogate=model
    )
    # Eight times the storm's element count: the stream's fast cost is
    # O(1) in n once the warp engages, so a longer train shows the
    # asymptotic win (the reference side stays modest in wall time).
    fastforward = measure_fastforward(runs, max(8 * n_elements, 256))
    report = {
        "workload": {
            "shape": "dma-storm",
            "n_spes": specs[0].config.n_spes,
            "element_bytes": STORM_ELEMENT_BYTES,
            "n_elements": n_elements,
            "events_modeled": events_modeled,
            "events_popped_fast": counts_fast["events_popped"],
        },
        "serial": serial,
        "fast": fast,
        "parallel": parallel,
        "surrogate": surrogate,
        "fastforward": fastforward,
        "speedup": (
            serial["seconds"] / parallel["seconds"] if parallel else None
        ),
        "fast_speedup": serial["seconds"] / fast["seconds"],
        "surrogate_speedup": serial["seconds"] / surrogate["seconds"],
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _print_report(report: dict) -> None:
    workload = report["workload"]
    print(
        f"dma-storm: {workload['n_spes']} SPEs x {workload['n_elements']} "
        f"x {workload['element_bytes']} B, {workload['events_modeled']} "
        f"events/run modeled ({workload['events_popped_fast']} popped fast)"
    )
    for label in ("serial", "fast", "parallel", "surrogate"):
        row = report.get(label)
        if row is None:
            continue
        print(
            f"  {label:9s} jobs={row['jobs']}: {row['runs']} runs in "
            f"{row['seconds']:.2f} s = {row['events_per_sec']:,.0f} events/s"
        )
    print(f"  fast engine: {report['fast_speedup']:.2f}x over serial reference")
    print(
        f"  surrogate: {report['surrogate_speedup']:.1f}x over serial "
        f"reference ({report['surrogate']['served']}/"
        f"{report['surrogate']['runs']} served analytically)"
    )
    ff = report["fastforward"]
    print(
        f"dma-stream: 1 SPE x {ff['n_elements']} x {ff['element_bytes']} B, "
        f"{ff['events_modeled']} events/run modeled"
    )
    print(
        f"  fast-forward: {ff['speedup']:.2f}x over serial reference, "
        f"{ff['windows_warped']} warp(s)/run eliding {ff['events_elided']} "
        f"pops ({100 * ff['ff_hit_rate']:.0f}% hit rate)"
    )
    if report["speedup"]:
        print(f"  speedup: {report['speedup']:.2f}x on {report['cpu_count']} core(s)")


def test_simkernel_throughput():
    """Pytest smoke: a reduced storm must clear a sanity floor and the
    JSON artefact must land."""
    report = run_benchmark(
        jobs=2, runs=4, n_elements=64, out="BENCH_simkernel.json"
    )
    print()
    _print_report(report)
    assert report["workload"]["events_modeled"] > 1000
    assert report["serial"]["events_per_sec"] > 10_000
    assert report["parallel"]["runs"] == report["serial"]["runs"]
    # The fast row must be present and byte-identical (run_benchmark
    # asserts sample equality); its speedup is environment-dependent,
    # so the smoke pins presence and consistency, not a ratio.
    assert report["fast"]["engine"] == "fast"
    assert report["fast"]["runs"] == report["serial"]["runs"]
    assert 0 < report["workload"]["events_popped_fast"] < (
        report["workload"]["events_modeled"]
    )
    # Reference rows pop what they model (the modeled total is seed 0's
    # count times runs; sibling seeds jitter by placement, so the match
    # is tight but not exact).
    assert (
        abs(report["serial"]["events_popped"] - report["serial"]["events_modeled"])
        <= 0.05 * report["serial"]["events_modeled"]
    )
    assert report["fast_speedup"] > 0
    # The fast-forward showcase: the periodic stream must actually
    # warp, byte-identically (asserted inside measure_fastforward).
    ff = report["fastforward"]
    assert ff["windows_warped"] >= 1
    assert ff["events_elided"] > 0
    assert 0 < ff["ff_hit_rate"] < 1
    # The surrogate row: every storm repetition is in the fitted
    # domain (the model was fitted on this very sweep), so all of them
    # must be served analytically, and faster than simulating.
    assert report["surrogate"]["served"] == report["serial"]["runs"]
    assert report["surrogate_speedup"] > report["fast_speedup"]
    assert os.path.exists("BENCH_simkernel.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool width (default: one per CPU core)")
    parser.add_argument("--runs", type=int, default=8,
                        help="repetitions per mode (default 8)")
    parser.add_argument("--elements", type=int, default=256,
                        help="DMA elements per SPE per run (default 256)")
    parser.add_argument("--out", default="BENCH_simkernel.json",
                        help="output JSON path (default BENCH_simkernel.json)")
    parser.add_argument("--min-fast-speedup", type=float, default=None,
                        help="fail unless the fast engine beats the serial "
                             "reference by this factor on the storm (CI floor)")
    args = parser.parse_args(argv)
    jobs = default_jobs() if args.jobs is None else args.jobs
    report = run_benchmark(jobs, args.runs, args.elements, args.out)
    _print_report(report)
    print(f"wrote {args.out}")
    if (
        args.min_fast_speedup is not None
        and report["fast_speedup"] < args.min_fast_speedup
    ):
        print(
            f"FAIL: fast engine speedup {report['fast_speedup']:.2f}x is "
            f"below the {args.min_fast_speedup:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
