"""DES-kernel throughput microbenchmark: events/second, serial vs pool.

The workload is a standard "DMA storm": all 8 SPEs stream GET+PUT
against main memory (the figure-8 shape that saturates the banks), one
fresh machine per repetition with seeded random placements — exactly
what every sweep in this repository fans out.  The benchmark

* counts the workload's event total once with an instrumented step
  loop (simulations are deterministic, so every repetition of a spec
  processes the same events),
* times the repetitions serially (``jobs=1``, the in-process path) and
  through the :class:`~repro.runtime.parallel.SweepExecutor` pool,
* writes ``BENCH_simkernel.json`` so the kernel's performance
  trajectory is tracked across PRs.

Run standalone (full size)::

    PYTHONPATH=src python benchmarks/bench_simkernel.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_simkernel.py --runs 16 --out /tmp/bench.json

or as a pytest smoke (reduced size)::

    pytest benchmarks/bench_simkernel.py -q -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

from repro.cell.chip import CellChip
from repro.cell.config import CellConfig
from repro.cell.topology import SpeMapping
from repro.core.experiment import RunSpec
from repro.core.kernels import DmaWorkload, FastStreamKernel, dma_stream_kernel
from repro.libspe import SpeContext
from repro.runtime.parallel import SweepExecutor, default_jobs

#: Placement seed of the first repetition (matches the experiments).
SEED_BASE = 1000

#: The storm: every SPE copies 4 KiB elements against main memory.
STORM_ELEMENT_BYTES = 4096


def storm_spec(seed: int, n_elements: int) -> RunSpec:
    """One repetition of the DMA storm as a picklable spec."""
    workload = DmaWorkload(
        direction="copy",
        element_bytes=STORM_ELEMENT_BYTES,
        n_elements=n_elements,
    )
    config = CellConfig.paper_blade()
    return RunSpec(
        config=config,
        seed=seed,
        assignments=tuple((logical, workload) for logical in range(config.n_spes)),
    )


def count_events(spec: RunSpec, engine: str = "reference") -> int:
    """Events one repetition processes, counted with a step loop.

    Deterministic: every repetition of the same spec (and, placement
    aside, of sibling seeds) drains the same event count, so the timed
    runs below can use the uninstrumented fast loop.  The fast engine
    coalesces provably-inert heap slots, so its count is lower for the
    same byte-identical result — both are reported.
    """
    chip = CellChip(
        config=spec.config,
        mapping=SpeMapping.random(spec.seed, spec.config.n_spes),
        engine=engine,
    )
    for logical, workload in spec.assignments:
        if chip.engine == "fast":
            FastStreamKernel(
                chip.env, chip.spe(logical), workload, {},
                unrolled=spec.unrolled,
            )
        else:
            SpeContext(chip, logical, unrolled=spec.unrolled).load(
                dma_stream_kernel, workload, {}, None
            )
    events = 0
    env = chip.env
    while env._queue:
        env.step()
        events += 1
    return events


def measure(
    jobs: int,
    specs: list[RunSpec],
    events_per_run: int,
    engine: str = "reference",
    surrogate=None,
) -> tuple[dict, list]:
    """Wall-clock one pass over ``specs`` at a worker count; returns the
    timing row and the samples (so callers can assert engine identity).
    With ``surrogate`` attached, in-domain repetitions are answered by
    the fitted model instead of the DES (the ``served`` count says how
    many were)."""
    with SweepExecutor(jobs=jobs, cache=None, engine=engine) as executor:
        executor.surrogate = surrogate
        if jobs > 1:
            executor._ensure_pool()  # exclude pool start-up from the timing
        begin = perf_counter()
        samples = executor.samples(specs)
        elapsed = perf_counter() - begin
        served = executor.surrogate_hits
    assert len(samples) == len(specs)
    total_events = events_per_run * len(specs)
    row = {
        "jobs": jobs,
        "engine": engine,
        "runs": len(specs),
        "seconds": elapsed,
        "events": total_events,
        "events_per_sec": total_events / elapsed,
    }
    if surrogate is not None:
        row["served"] = served
    return row, samples


def run_benchmark(jobs: int, runs: int, n_elements: int, out: str) -> dict:
    specs = [storm_spec(SEED_BASE + i, n_elements) for i in range(runs)]
    events_per_run = count_events(specs[0])
    events_per_run_fast = count_events(specs[0], engine="fast")
    serial, serial_samples = measure(1, specs, events_per_run)
    fast, fast_samples = measure(1, specs, events_per_run_fast, engine="fast")
    # The engines' contract, re-checked where the speedup is claimed.
    assert fast_samples == serial_samples, "fast engine diverged from reference"
    parallel = (
        measure(jobs, specs, events_per_run)[0] if jobs > 1 else None
    )
    # The analytic surrogate, fitted on the storm results just
    # simulated, answering the same sweep in O(1) per repetition.
    from repro.analysis.surrogate import SurrogateModel

    model = SurrogateModel.fit(specs, serial_samples, code_version="bench")
    surrogate, _ = measure(
        1, specs, events_per_run_fast, engine="fast", surrogate=model
    )
    report = {
        "workload": {
            "shape": "dma-storm",
            "n_spes": specs[0].config.n_spes,
            "element_bytes": STORM_ELEMENT_BYTES,
            "n_elements": n_elements,
            "events_per_run": events_per_run,
            "events_per_run_fast": events_per_run_fast,
        },
        "serial": serial,
        "fast": fast,
        "parallel": parallel,
        "surrogate": surrogate,
        "speedup": (
            serial["seconds"] / parallel["seconds"] if parallel else None
        ),
        "fast_speedup": serial["seconds"] / fast["seconds"],
        "surrogate_speedup": serial["seconds"] / surrogate["seconds"],
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _print_report(report: dict) -> None:
    workload = report["workload"]
    print(
        f"dma-storm: {workload['n_spes']} SPEs x {workload['n_elements']} "
        f"x {workload['element_bytes']} B, {workload['events_per_run']} events/run"
    )
    for label in ("serial", "fast", "parallel", "surrogate"):
        row = report.get(label)
        if row is None:
            continue
        print(
            f"  {label:9s} jobs={row['jobs']}: {row['runs']} runs in "
            f"{row['seconds']:.2f} s = {row['events_per_sec']:,.0f} events/s"
        )
    print(f"  fast engine: {report['fast_speedup']:.2f}x over serial reference")
    print(
        f"  surrogate: {report['surrogate_speedup']:.1f}x over serial "
        f"reference ({report['surrogate']['served']}/"
        f"{report['surrogate']['runs']} served analytically)"
    )
    if report["speedup"]:
        print(f"  speedup: {report['speedup']:.2f}x on {report['cpu_count']} core(s)")


def test_simkernel_throughput():
    """Pytest smoke: a reduced storm must clear a sanity floor and the
    JSON artefact must land."""
    report = run_benchmark(
        jobs=2, runs=4, n_elements=64, out="BENCH_simkernel.json"
    )
    print()
    _print_report(report)
    assert report["workload"]["events_per_run"] > 1000
    assert report["serial"]["events_per_sec"] > 10_000
    assert report["parallel"]["runs"] == report["serial"]["runs"]
    # The fast row must be present and byte-identical (run_benchmark
    # asserts sample equality); its speedup is environment-dependent,
    # so the smoke pins presence and consistency, not a ratio.
    assert report["fast"]["engine"] == "fast"
    assert report["fast"]["runs"] == report["serial"]["runs"]
    assert 0 < report["workload"]["events_per_run_fast"] < (
        report["workload"]["events_per_run"]
    )
    assert report["fast_speedup"] > 0
    # The surrogate row: every storm repetition is in the fitted
    # domain (the model was fitted on this very sweep), so all of them
    # must be served analytically, and faster than simulating.
    assert report["surrogate"]["served"] == report["serial"]["runs"]
    assert report["surrogate_speedup"] > report["fast_speedup"]
    assert os.path.exists("BENCH_simkernel.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool width (default: one per CPU core)")
    parser.add_argument("--runs", type=int, default=8,
                        help="repetitions per mode (default 8)")
    parser.add_argument("--elements", type=int, default=256,
                        help="DMA elements per SPE per run (default 256)")
    parser.add_argument("--out", default="BENCH_simkernel.json",
                        help="output JSON path (default BENCH_simkernel.json)")
    args = parser.parse_args(argv)
    jobs = default_jobs() if args.jobs is None else args.jobs
    report = run_benchmark(jobs, args.runs, args.elements, args.out)
    _print_report(report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
