"""Task-runtime extension: the paper's guidelines inside a scheduler.

Compares the untuned (memory-staging) runtime against the guideline-
tuned (SPE-to-SPE forwarding + locality) runtime on dependency-heavy
graphs, asserting both the makespan win and the traffic shift the
paper's bandwidth results predict.
"""

from repro.runtime import OffloadRuntime, fan_out_fan_in, wavefront


def test_runtime_policies(run_once):
    def study():
        rows = {}
        for name, graph, n_spes in (
            ("wavefront 8x10", wavefront(width=8, steps=10), 8),
            ("map-reduce w16", fan_out_fan_in(width=16), 8),
        ):
            rows[name] = {
                policy: OffloadRuntime(graph, n_spes=n_spes, policy=policy).run()
                for policy in ("memory", "forward")
            }
        return rows

    rows = run_once(study)
    print()
    for name, results in rows.items():
        memory, forward = results["memory"], results["forward"]
        print(f"{name}:")
        for stats in (memory, forward):
            print(f"  {stats}")
        speedup = memory.makespan_cycles / forward.makespan_cycles
        print(f"  speedup {speedup:.2f}x")
        assert forward.makespan_cycles <= memory.makespan_cycles
        assert forward.memory_read_bytes < memory.memory_read_bytes
        assert forward.forwarded_bytes > 0
    # The dependency-heavy wavefront must show a real win, not a tie.
    wavefront_results = rows["wavefront 8x10"]
    assert (
        wavefront_results["memory"].makespan_cycles
        > 1.15 * wavefront_results["forward"].makespan_cycles
    )
