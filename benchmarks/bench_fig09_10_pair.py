"""Figures 9 and 10: single SPE pair — distance and sync-delay effects.

Figure 9's setup (logical SPE 0 against each other logical SPE, random
placements) shows the small (<2 GB/s) distance dependence; Figure 10
sweeps how often the SPU waits for its tags: after every command, every
2, every 4, ... or only once at the end, against the element size.
"""

from repro.core import PairDistanceExperiment, PairSyncExperiment
from repro.core import validation
from repro.core.report import render_result
from repro.core.spe_pairs import SYNC_AFTER_ALL


def test_fig09_pair_distance(run_once, bench_params):
    experiment = PairDistanceExperiment(
        element_sizes=(16384,),
        repetitions=bench_params["repetitions"],
        bytes_per_spe=bench_params["bytes_per_spe"],
    )
    result = run_once(experiment.run)
    print()
    print(render_result(result))
    checks = validation.check_pair_distance(result)
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)


def test_fig10_sync_delay(run_once, bench_params):
    experiment = PairSyncExperiment(
        sync_policies=(1, 2, 4, 16, SYNC_AFTER_ALL),
        element_sizes=bench_params["element_sizes"],
        repetitions=2,
        bytes_per_spe=bench_params["bytes_per_spe"],
    )
    result = run_once(experiment.run)
    print()
    print(render_result(result))
    checks = validation.check_pair_sync(result)
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)
    table = result.table("sync")
    # Monotone (up to noise) in the sync delay at every element size.
    for element in experiment.element_sizes:
        series = [table.mean(policy, element) for policy in (1, 2, 4, 16, SYNC_AFTER_ALL)]
        for earlier, later in zip(series, series[1:], strict=False):
            assert later >= earlier - 0.1
