"""Figure 8: SPE <-> main memory DMA-elem bandwidth, weak scaling.

Regenerates all three panels (GET, PUT, GET+PUT) over 1/2/4/8 SPEs and
the element sweep, then asserts the section-4.2.1 anchors: ~10 GB/s for
one SPE regardless of operation, ~20 GB/s for two, copy peaking near 23,
a rise from 2 to 4 SPEs, and the drop with all 8 active.
"""

from repro.core import SpeMemoryExperiment
from repro.core import validation
from repro.core.report import render_result


def test_fig08_spe_memory(run_once, bench_params):
    experiment = SpeMemoryExperiment(
        element_sizes=bench_params["element_sizes"],
        repetitions=min(3, bench_params["repetitions"]),
        bytes_per_spe=bench_params["bytes_per_spe"],
    )
    result = run_once(experiment.run)
    print()
    print(render_result(result))
    checks = validation.check_spe_memory(result)
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)
