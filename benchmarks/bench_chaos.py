"""Chaos recovery benchmark: a pooled sweep under injected host faults.

Where ``bench_fault_tolerance.py`` measures *simulated* SPE loss, this
benchmark injures the *host*: one pool worker is SIGKILLed and one
hangs past its timeout during a real sweep of the paper's Fig. 8
repetitions.  Asserts the recovery contract end to end — the sweep
completes, every sample is byte-identical to a clean serial run, and
the recovery overhead stays bounded (detection + pool rebuild +
re-dispatch, not a restart of the whole sweep).

Run:  pytest benchmarks/bench_chaos.py --benchmark-only -s
"""

import time

from repro.runtime.parallel import SweepExecutor
from repro.runtime.resilience import HostRetryPolicy

from tests.chaos.targets import chaos_target
from tests.test_parallel_and_cache import make_spec

SEEDS = tuple(range(2000, 2008))
TIMEOUT_S = 5.0


def _specs():
    return [make_spec(seed, n_elements=32, n_spes=2) for seed in SEEDS]


def test_chaos_recovery(run_once, tmp_path):
    def study():
        with SweepExecutor(jobs=1) as serial:
            clean_start = time.monotonic()
            expected = serial.samples(_specs())
            clean_s = time.monotonic() - clean_start
        target = chaos_target(
            tmp_path, kill_seeds=(SEEDS[2],), hang_seeds=(SEEDS[5],)
        )
        policy = HostRetryPolicy(timeout_s=TIMEOUT_S, retries=2)
        with SweepExecutor(jobs=2, policy=policy, target=target) as chaotic:
            chaos_start = time.monotonic()
            survived = chaotic.samples(_specs())
            chaos_s = time.monotonic() - chaos_start
            retried = chaotic.retried
        return expected, survived, retried, clean_s, chaos_s

    expected, survived, retried, clean_s, chaos_s = run_once(study)
    print()
    print(f"clean serial sweep:   {clean_s:6.2f} s")
    print(f"chaotic pooled sweep: {chaos_s:6.2f} s "
          f"(1 kill + 1 hang, {retried} retr(ies))")
    # The contract, not a vibe: every surviving sample is the clean one.
    assert survived == expected
    assert retried >= 2  # both casualties were re-dispatched
    # Recovery cost is bounded by detection + rebuild, not a re-run of
    # the world: the hang costs ~TIMEOUT_S, the kill costs a poll tick.
    assert chaos_s < clean_s + 10 * TIMEOUT_S
