"""Figures 12 and 13: couples of SPEs, DMA-elem and DMA-list.

Figure 12: mean bandwidth for 1/2/4 pairs over the element sweep, both
command modes.  Figure 13: the min/median/mean/max placement statistics
at 8 SPEs.  Anchors: pairs near peak at small team sizes, a 60-75%-of-
134.4 average with a wide placement spread at four pairs, DMA-elem
degradation below 1 KiB, and flat DMA-list bandwidth.
"""

from repro.core import CouplesExperiment
from repro.core import validation
from repro.core.report import format_placement_statistics, render_result


def test_fig12_13_couples(run_once, bench_params):
    experiment = CouplesExperiment(
        element_sizes=bench_params["element_sizes"],
        repetitions=bench_params["repetitions"],
        bytes_per_spe=bench_params["bytes_per_spe"],
    )
    result = run_once(experiment.run)
    print()
    print(render_result(result))
    for mode in ("elem", "list"):
        print(
            format_placement_statistics(
                result.table(mode),
                fixed_key=(8,),
                title=f"Figure 13 ({mode}): 8 SPEs over placements",
            )
        )
    checks = validation.check_couples(result)
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)

    # DMA-elem degrades below 1 KiB; DMA-list stays flat (paper: "DMA-list
    # transfers show constant bandwidth performance").
    elem = result.table("elem")
    lists = result.table("list")
    assert elem.mean(2, 128) < 0.5 * elem.mean(2, 16384)
    assert lists.mean(2, 128) > 0.9 * lists.mean(2, 16384)
