"""The section-1/5 guideline: two 4-SPE streams vs one 8-SPE stream.

Not a figure in the paper, but its most-quoted sentence.  Runs the
streaming-pipeline comparison (mailbox flow control, double buffering)
and asserts the two-stream configuration wins on the same data volume.
"""

from repro.analysis import StreamingComparison


def test_guideline_two_streams(run_once):
    comparison = StreamingComparison(chunk_bytes=16384, chunks_per_stream_unit=48)
    results = run_once(comparison.run)
    single, double = results["single"], results["double"]
    print()
    print(f"{single.label}: {single.gbps:.2f} GB/s")
    print(f"{double.label}: {double.gbps:.2f} GB/s")
    print(f"advantage: {double.gbps / single.gbps:.2f}x")
    assert double.total_bytes == single.total_bytes
    assert double.gbps > 1.4 * single.gbps
