"""Section 4.2.2: SPU <-> local store load/store bandwidth (no figure).

The paper reports hitting the 33.6 GB/s peak with 16 B accesses and
omits the plot for space; this regenerates the full op x element-size
table.
"""

import pytest

from repro.core import SpeLocalStoreExperiment
from repro.core import validation
from repro.core.report import render_result


def test_sec422_spu_localstore(run_once):
    result = run_once(SpeLocalStoreExperiment().run)
    print()
    print(render_result(result))
    table = result.table("bandwidth")
    assert table.mean("load", 16) == pytest.approx(33.6)
    checks = validation.check_localstore(result)
    assert all(check.passed for check in checks)
