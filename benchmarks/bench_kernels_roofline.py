"""Section 5 future work: small kernels against the roofline.

Not a figure in the paper (it promises this evaluation as future work);
included because the bandwidth results exist to inform exactly these
kernels.  Asserts the roofline's classifications and the headline
numbers: bandwidth-bound kernels pinned at the Figure-8 memory ceiling,
SP matmul at ~99% of compute peak, DP matmul ~14x slower.
"""

import pytest

from repro.kernels import (
    Precision,
    RooflineModel,
    dot_product,
    matrix_multiply,
    matrix_vector,
    stream_triad,
)


def test_kernel_roofline(run_once):
    roofline = RooflineModel()
    n_spes = 4
    kernels = [
        dot_product(),
        stream_triad(),
        matrix_vector(),
        matrix_multiply(block=64),
        matrix_multiply(block=64, precision=Precision.DOUBLE),
    ]
    points = run_once(
        lambda: [roofline.verify(spec, n_spes, iterations_per_spe=48) for spec in kernels]
    )
    print()
    print(RooflineModel.format(points))

    by_name = {point.spec.name: point for point in points}
    assert by_name["dot-product-single"].bound == "bandwidth"
    assert by_name["stream-triad-single"].bound == "bandwidth"
    assert by_name["matmul-b64-single"].bound == "compute"

    # Bandwidth-bound kernels inherit the Figure-8 memory ceiling.
    dot = by_name["dot-product-single"].measured
    assert dot.gbps == pytest.approx(roofline.bandwidth_roof(n_spes), rel=0.15)

    # SP matmul sits at the compute roof; DP collapses by ~14x.
    sp = by_name["matmul-b64-single"].measured
    dp = by_name["matmul-b64-double"].measured
    assert sp.gflops > 0.9 * roofline.compute_roof(Precision.SINGLE, n_spes)
    assert 10.0 < sp.gflops / dp.gflops < 15.0

    # The roofline predicts every kernel within 15%.
    assert all(point.model_error < 0.15 for point in points)
