"""Affinity extension: planned vs lottery vs adversarial placement.

The paper's conclusion claims the physical layout is "critical" and
asks for an affinity API; this bench quantifies what such an API would
buy on both 8-SPE workloads.
"""

import statistics

from repro.analysis.affinity import (
    CommunicationPattern,
    measure_mapping,
    plan_mapping,
)
from repro.cell import SpeMapping


def test_affinity_gain(run_once):
    def study():
        rows = {}
        for name, pattern in (
            ("couples", CommunicationPattern.couples(8)),
            ("cycle", CommunicationPattern.cycle(8)),
        ):
            planned = measure_mapping(pattern, plan_mapping(pattern))
            adversarial = measure_mapping(
                pattern, plan_mapping(pattern, objective="worst")
            )
            lottery = statistics.fmean(
                measure_mapping(pattern, SpeMapping.random(seed))
                for seed in range(6)
            )
            rows[name] = (planned, lottery, adversarial)
        return rows

    rows = run_once(study)
    print()
    print(f"{'pattern':<10} {'planned':>9} {'lottery':>9} {'adversarial':>12}")
    for name, (planned, lottery, adversarial) in rows.items():
        print(f"{name:<10} {planned:9.1f} {lottery:9.1f} {adversarial:12.1f}")
    for planned, lottery, adversarial in rows.values():
        assert planned > lottery > adversarial
    # Planned couples recover essentially the whole peak.
    assert rows["couples"][0] > 0.9 * 134.4
