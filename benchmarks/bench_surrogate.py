"""Bandwidth-surrogate benchmark: fit cost, predict throughput, sweep speedup.

Three numbers, tracked across PRs in ``BENCH_surrogate.json``:

* **fit seconds** — least-squares fitting of every path family of the
  quick training sweep (pure-python normal equations; the training
  simulations themselves are timed separately as the DES baseline);
* **predict queries/sec** — sustained :meth:`SurrogateModel.predict_many`
  throughput over the fitted domain (the ISSUE floor is 10,000/s on a
  1-core CI box);
* **auto-sweep speedup** — wall-clock of the training sweep served by
  an executor with the surrogate attached versus simulating it with the
  fast DES engine (the ``--surrogate=auto`` warm-model story; the
  ISSUE floor is 10x on in-domain cells).

Run standalone (full quick sweep)::

    PYTHONPATH=src python benchmarks/bench_surrogate.py
    PYTHONPATH=src python benchmarks/bench_surrogate.py --preset default --out /tmp/b.json

or as a pytest smoke (volume-reduced sweep, same floors)::

    pytest benchmarks/bench_surrogate.py -q -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from time import perf_counter

from repro.analysis.surrogate import SurrogateModel
from repro.analysis.surrogate_store import training_specs
from repro.core.experiment import RunSpec, run_spec
from repro.runtime.parallel import SweepExecutor

#: predict_many queries timed (batch repeats the sweep's specs).
PREDICT_QUERIES = 20_000

#: The ISSUE's acceptance floors, asserted by the pytest smoke.
MIN_PREDICT_QPS = 10_000
MIN_SWEEP_SPEEDUP = 10.0


def sweep_specs(preset: str, max_elements: int | None = None) -> list[RunSpec]:
    """The preset's training sweep, optionally volume-reduced (the
    pytest smoke caps commands per SPE so the DES baseline stays
    seconds, not minutes — the surrogate's own cost is size-blind)."""
    specs = training_specs(preset)
    if max_elements is None:
        return specs
    return [
        replace(
            spec,
            assignments=tuple(
                (
                    logical,
                    replace(
                        workload,
                        n_elements=min(workload.n_elements, max_elements),
                    ),
                )
                for logical, workload in spec.assignments
            ),
        )
        for spec in specs
    ]


def run_benchmark(
    preset: str, out: str, max_elements: int | None = None
) -> dict:
    specs = sweep_specs(preset, max_elements)

    begin = perf_counter()
    samples = [run_spec(spec, engine="fast") for spec in specs]
    sim_seconds = perf_counter() - begin

    begin = perf_counter()
    model = SurrogateModel.fit(specs, samples, code_version="bench")
    fit_seconds = perf_counter() - begin

    repeats = max(1, PREDICT_QUERIES // len(specs))
    batch = specs * repeats
    begin = perf_counter()
    predictions = model.predict_many(batch)
    predict_seconds = perf_counter() - begin
    served = sum(prediction is not None for prediction in predictions)

    # The --surrogate=auto warm-model path: an executor answering the
    # same sweep from the fitted model (no cache, no pool — the
    # comparison is model arithmetic vs DES arithmetic).
    with SweepExecutor(jobs=1, cache=None, engine="fast") as executor:
        executor.surrogate = model
        begin = perf_counter()
        auto_samples = executor.samples(specs)
        auto_seconds = perf_counter() - begin
    assert len(auto_samples) == len(specs)

    report = {
        "preset": preset,
        "max_elements": max_elements,
        "sweep": {
            "specs": len(specs),
            "paths": model.n_paths,
            "points": model.report.n_points,
            "worst_mape": model.report.worst_mape(),
        },
        "fit_seconds": fit_seconds,
        "predict": {
            "queries": len(batch),
            "served": served,
            "seconds": predict_seconds,
            "queries_per_sec": len(batch) / predict_seconds,
        },
        "sweep_seconds_des_fast": sim_seconds,
        "sweep_seconds_surrogate": auto_seconds,
        "surrogate_hits": executor.surrogate_hits,
        "surrogate_fallbacks": executor.surrogate_fallbacks,
        "auto_sweep_speedup": sim_seconds / auto_seconds,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def _print_report(report: dict) -> None:
    sweep = report["sweep"]
    predict = report["predict"]
    print(
        f"surrogate ({report['preset']} sweep): {sweep['specs']} specs, "
        f"{sweep['paths']} fitted path(s), "
        f"worst MAPE {100 * sweep['worst_mape']:.2f}%"
    )
    print(f"  fit: {report['fit_seconds']:.3f} s")
    print(
        f"  predict_many: {predict['queries']} queries in "
        f"{predict['seconds']:.3f} s = "
        f"{predict['queries_per_sec']:,.0f} queries/s "
        f"({predict['served']} served)"
    )
    print(
        f"  sweep: DES(fast) {report['sweep_seconds_des_fast']:.2f} s vs "
        f"surrogate {report['sweep_seconds_surrogate']:.2f} s = "
        f"{report['auto_sweep_speedup']:.1f}x "
        f"({report['surrogate_hits']} served / "
        f"{report['surrogate_fallbacks']} fallback(s))"
    )


def test_surrogate_benchmark(tmp_path):
    """Pytest smoke: the ISSUE's floors on a volume-reduced quick sweep,
    plus fit-and-store round-trip sanity."""
    out = str(tmp_path / "BENCH_surrogate.json")
    report = run_benchmark("quick", out, max_elements=48)
    print()
    _print_report(report)
    assert report["sweep"]["paths"] > 0
    assert report["sweep"]["worst_mape"] <= 0.02
    assert report["predict"]["queries_per_sec"] >= MIN_PREDICT_QPS
    assert report["predict"]["served"] >= report["predict"]["queries"] * 0.9
    assert report["auto_sweep_speedup"] >= MIN_SWEEP_SPEEDUP
    assert os.path.exists(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="quick",
                        choices=("quick", "default", "paper"),
                        help="training-sweep preset (default quick)")
    parser.add_argument("--max-elements", type=int, default=None,
                        help="cap DMA commands per SPE (reduced smoke)")
    parser.add_argument("--out", default="BENCH_surrogate.json",
                        help="output JSON path (default BENCH_surrogate.json)")
    args = parser.parse_args(argv)
    report = run_benchmark(args.preset, args.out, args.max_elements)
    _print_report(report)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
