"""Fault-tolerance extension: makespan under injected SPE loss.

Runs the offload runtime on a dependency-heavy wavefront while the
fault engine kills 0, 1 or 2 SPE contexts, under both scheduling
policies.  Asserts the recovery contract: every task graph completes,
the quarantined SPEs are reported, and the degraded makespan stays in a
sane band around the healthy one (the re-dispatch path works, without
blowing the run up).  Also re-runs one faulted configuration to assert
seed determinism.
"""

from repro.runtime import OffloadRuntime, wavefront
from repro.sim import FaultEngine

FAULT_SEED = 7


def _run(graph, policy, crashes):
    faults = (
        FaultEngine(f"spe_crash:{crashes}", seed=FAULT_SEED) if crashes else None
    )
    return OffloadRuntime(graph, n_spes=8, policy=policy, faults=faults).run()


def test_fault_tolerance(run_once):
    def study():
        graph = wavefront(width=8, steps=10)
        rows = {}
        for policy in ("memory", "forward"):
            rows[policy] = {
                crashes: _run(graph, policy, crashes) for crashes in (0, 1, 2)
            }
        rows["repeat"] = _run(graph, "forward", 2)
        return rows

    rows = run_once(study)
    print()
    for policy in ("memory", "forward"):
        print(f"policy={policy}:")
        for crashes, stats in rows[policy].items():
            print(f"  crashes={crashes}: {stats}")
            # The whole graph completed despite the losses.
            assert sum(stats.tasks_per_spe.values()) == stats.n_tasks
            assert stats.spes_lost == crashes
            assert len(stats.lost_workers) == crashes
            if crashes:
                assert stats.faults_injected >= crashes
        baseline = rows[policy][0].makespan_cycles
        degraded = rows[policy][2].makespan_cycles
        print(f"  2-crash slowdown {degraded / baseline:.2f}x")
        # Recovery is not free lunch and not a blow-up: the degraded
        # makespan stays within a sane band of the healthy one.  (An
        # *early* crash can even shorten the run slightly — fewer
        # workers means less memory contention on a width-8 graph — so
        # strict monotonicity would over-assert a simulation artefact.)
        assert 0.75 * baseline < degraded < 3 * baseline
    # Same spec + seed ⇒ byte-identical stats.
    first = rows["forward"][2]
    again = rows["repeat"]
    assert (first.makespan_cycles, first.faults_injected, first.tasks_retried,
            first.lost_workers) == (
        again.makespan_cycles, again.faults_injected, again.tasks_retried,
        again.lost_workers)
