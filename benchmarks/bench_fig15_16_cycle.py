"""Figures 15 and 16: cycles of SPEs — the saturated-EIB streaming shape.

Figure 15: mean bandwidth for 2/4/8-SPE cycles over the element sweep,
both modes.  Figure 16: placement statistics at 8 SPEs.  Anchors: peak
at 2 SPEs, ~50 of 67.2 at 4, ~70-90 of 134.4 at 8 — and, the paper's
point, *lower* than the couples experiment despite twice the active
transfers: saturating the EIB is counterproductive.
"""

from repro.core import CouplesExperiment, CycleExperiment
from repro.core import validation
from repro.core.report import format_placement_statistics, render_result


def test_fig15_16_cycle(run_once, bench_params):
    def run_both():
        cycle = CycleExperiment(
            element_sizes=bench_params["element_sizes"],
            repetitions=bench_params["repetitions"],
            bytes_per_spe=bench_params["bytes_per_spe"],
        ).run()
        couples = CouplesExperiment(
            spe_counts=(8,),
            element_sizes=(16384,),
            modes=("elem",),
            repetitions=bench_params["repetitions"],
            bytes_per_spe=bench_params["bytes_per_spe"],
        ).run()
        return cycle, couples

    cycle_result, couples_result = run_once(run_both)
    print()
    print(render_result(cycle_result))
    for mode in ("elem", "list"):
        print(
            format_placement_statistics(
                cycle_result.table(mode),
                fixed_key=(8,),
                title=f"Figure 16 ({mode}): 8-SPE cycle over placements",
            )
        )
    checks = validation.check_cycle(cycle_result, couples_result)
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)
