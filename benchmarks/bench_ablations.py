"""Ablations: which mechanism produces which paper result.

Each ablation perturbs one calibrated mechanism and shows the
measurement it owns responding — the model's answer to "is that number
built in, or does it emerge?".

* MFC queue depth -> the value of delayed synchronisation (Fig. 10);
* EIB grant quantum -> single-pair efficiency ("almost peak");
* rings per direction -> couples-of-8 contention (Fig. 13);
* memory turnaround fraction -> the single-SPE ~10 GB/s (Fig. 8);
* IOIF bandwidth -> the 2-SPE ~20 GB/s (both banks) (Fig. 8);
* conflict retry cost -> the cycle-of-8 saturation loss (Fig. 15).
"""

import pytest

from repro.analysis import AblationStudy
from repro.core import (
    CouplesExperiment,
    CycleExperiment,
    PairSyncExperiment,
    SpeMemoryExperiment,
)
from repro.core.spe_pairs import SYNC_AFTER_ALL

VOLUME = 2 ** 20


def pair_bandwidth(config):
    result = PairSyncExperiment(
        sync_policies=(SYNC_AFTER_ALL,),
        element_sizes=(4096,),
        repetitions=1,
        bytes_per_spe=VOLUME,
        config=config,
    ).run()
    return result.table("sync").mean(SYNC_AFTER_ALL, 4096)


def memory_bandwidth(config, n_spes):
    result = SpeMemoryExperiment(
        spe_counts=(n_spes,),
        element_sizes=(16384,),
        directions=("get",),
        repetitions=1,
        bytes_per_spe=VOLUME,
        config=config,
    ).run()
    return result.table("get").mean(n_spes, 16384)


def couples8_bandwidth(config):
    result = CouplesExperiment(
        spe_counts=(8,),
        element_sizes=(16384,),
        modes=("elem",),
        repetitions=4,
        bytes_per_spe=VOLUME,
        config=config,
    ).run()
    return result.table("elem").mean(8, 16384)


def cycle8_bandwidth(config):
    result = CycleExperiment(
        spe_counts=(8,),
        element_sizes=(16384,),
        modes=("elem",),
        repetitions=4,
        bytes_per_spe=VOLUME,
        config=config,
    ).run()
    return result.table("elem").mean(8, 16384)


def run_study(run_once, parameter, values, metric):
    study = AblationStudy(parameter, values, metric)
    points = run_once(study.run)
    print()
    print(AblationStudy.format(points))
    return points


def test_ablate_mfc_queue_depth(run_once):
    points = run_study(
        run_once, "mfc.queue_depth", [1, 2, 4, 16], pair_bandwidth
    )
    assert points[-1].metric > 1.5 * points[0].metric


def test_ablate_grant_quantum(run_once):
    points = run_study(
        run_once, "eib.grant_quantum_bytes", [128, 512, 2048, 8192], pair_bandwidth
    )
    # Finer grants pay arbitration more often: strictly worse.
    metrics = [point.metric for point in points]
    assert metrics == sorted(metrics)


def test_ablate_rings_per_direction(run_once):
    points = run_study(
        run_once, "eib.rings_per_direction", [1, 2, 4], couples8_bandwidth
    )
    assert points[1].metric > points[0].metric  # the 4-ring EIB earns its keep


def test_ablate_memory_window(run_once):
    """The single-SPE ~10 GB/s is the MFC's outstanding-transaction
    window: halve it and one SPE halves; remove it and the banks'
    turnaround becomes the limiter."""
    points = run_study(
        run_once,
        "mfc.memory_path_bytes_per_cpu_cycle",
        [2.43, 10.2e9 / 2.1e9, 97.0],
        lambda config: memory_bandwidth(config, 1),
    )
    halved, paper, unbounded = (point.metric for point in points)
    assert halved < paper < unbounded
    assert paper == pytest.approx(10.0, rel=0.15)


def test_ablate_memory_turnaround(run_once):
    """With the MFC window out of the way, the bank's same-requester
    turnaround controls what a lone streaming SPE can pull."""
    import repro.analysis.ablation as ablation
    from repro.cell import CellConfig

    base = ablation.perturb(
        CellConfig.paper_blade(), "mfc.memory_path_bytes_per_cpu_cycle", 97.0
    )
    study = AblationStudy(
        "memory.same_requester_turnaround_fraction",
        [0.0, 0.65, 1.3],
        lambda config: memory_bandwidth(config, 1),
        base_config=base,
    )
    points = run_once(study.run)
    print()
    print(AblationStudy.format(points))
    none, paper, heavy = (point.metric for point in points)
    assert none > paper > heavy


def test_ablate_ioif_bandwidth(run_once):
    points = run_study(
        run_once,
        "eib.ioif_bytes_per_cpu_cycle",
        [7.0e9 / 2.1e9, 16.8e9 / 2.1e9],
        lambda config: memory_bandwidth(config, 4),
    )
    # A full-rate IOIF would lift the multi-SPE plateau: the 7 GB/s link
    # is part of why the paper sees ~21, not ~28.
    assert points[1].metric > points[0].metric


def test_ablate_conflict_retry(run_once):
    points = run_study(
        run_once, "eib.conflict_retry_cycles", [0, 30, 90], cycle8_bandwidth
    )
    metrics = [point.metric for point in points]
    assert metrics[0] > metrics[1] > metrics[2]
