"""Figures 3, 4 and 6: PPE load/store/copy bandwidth to L1, L2, memory.

Regenerates all three figures' series (op x threads x element size) and
asserts the prose anchors: half-peak L1 loads from 8 B, no 16 B gain on
loads, proportional scaling below 8 B, L2 far below L1, stores ~2x loads
at L2 for one thread, memory loads == L2 loads, everything to memory
under 6 GB/s.
"""

import pytest

from repro.core import PpeBandwidthExperiment
from repro.core import validation
from repro.core.report import render_result


@pytest.mark.parametrize("level", ["l1", "l2", "mem"])
def test_ppe_figure(run_once, level):
    experiment = PpeBandwidthExperiment(level)
    result = run_once(experiment.run)
    print()
    print(render_result(result))
    table = result.table("bandwidth")
    if level == "l1":
        assert table.mean("load", 1, 8) == pytest.approx(16.8)
        assert table.mean("load", 1, 16) == pytest.approx(16.8)
    if level == "mem":
        assert max(stats.mean for _key, stats in table.rows()) < 6.0


def test_ppe_claims(run_once):
    results = run_once(
        lambda: {
            level: PpeBandwidthExperiment(level).run()
            for level in ("l1", "l2", "mem")
        }
    )
    checks = validation.check_ppe(results)
    print()
    print(validation.summarize(checks))
    assert all(check.passed for check in checks)
